package diffcheck

import (
	"math/rand"
	"testing"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/ilp"
	"rulefit/internal/randgen"
)

// TestStatsAccountingRandomLimits drives ilp.Solve through
// core.BuildModel on random instances under randomly drawn node and
// time limits, and checks the documented Stats invariants:
//
//   - every expanded node has exactly one outcome, so the per-outcome
//     counters sum to Nodes;
//   - NodeLimit is a hard cap on Nodes;
//   - a StopReason is never reported for a limit that was not set;
//   - a non-terminal status always carries a StopReason, and a cleanly
//     proven answer carries StopNone (unless a subtree was lost);
//   - Gap is 0 for proven optima, >= 0 for anytime solutions, and the
//     -1 sentinel otherwise.
func TestStatsAccountingRandomLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	solved := 0
	for seed := int64(1); seed <= 60; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, err := core.BuildModel(inst.Problem, core.Options{})
		if err != nil {
			continue // encoding-level infeasibility; nothing to solve
		}
		var o ilp.Options
		o.Workers = 1 + rng.Intn(3)
		switch seed % 4 {
		case 0:
			o.NodeLimit = 1 + rng.Intn(8)
		case 1:
			o.TimeLimit = time.Duration(1+rng.Intn(1000)) * time.Nanosecond
		case 2:
			o.NodeLimit = 1 + rng.Intn(4)
			o.TimeLimit = time.Duration(1+rng.Intn(100)) * time.Microsecond
		default:
			// no limits: the answer must be proven
		}
		sol, err := ilp.Solve(m, o)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		solved++
		st := sol.Stats

		sum := st.Branched + st.PrunedBound + st.PrunedInfeasible + st.IntegralLeaves + st.LostSubtrees
		if sum != st.Nodes {
			t.Errorf("seed %d: outcome counters sum to %d, Nodes=%d (%+v)", seed, sum, st.Nodes, st)
		}
		if o.NodeLimit > 0 && st.Nodes > o.NodeLimit {
			t.Errorf("seed %d: Nodes=%d exceeds NodeLimit=%d", seed, st.Nodes, o.NodeLimit)
		}

		// StopReason precedence: a reason can only cite a limit that was
		// actually configured (or a genuinely lost subtree).
		switch st.StopReason {
		case ilp.StopDeadline:
			if o.TimeLimit == 0 {
				t.Errorf("seed %d: StopDeadline with no TimeLimit set", seed)
			}
		case ilp.StopNodeLimit:
			if o.NodeLimit == 0 {
				t.Errorf("seed %d: StopNodeLimit with no NodeLimit set", seed)
			}
		case ilp.StopNone, ilp.StopLostSubtree:
		default:
			t.Errorf("seed %d: unknown stop reason %v", seed, st.StopReason)
		}

		switch sol.Status {
		case ilp.Optimal, ilp.Infeasible:
			if st.StopReason != ilp.StopNone {
				t.Errorf("seed %d: proven %v but StopReason=%v", seed, sol.Status, st.StopReason)
			}
			if o.TimeLimit == 0 && o.NodeLimit == 0 && sol.Status == ilp.Optimal {
				//lint:exactfloat proven optimality must report an exactly-zero gap
				if st.Gap != 0 {
					t.Errorf("seed %d: optimal with Gap=%g", seed, st.Gap)
				}
			}
		default:
			// Limit-terminated: must explain why it stopped.
			if st.StopReason == ilp.StopNone {
				t.Errorf("seed %d: status %v with StopReason=none (%+v)", seed, sol.Status, st)
			}
			if st.Gap < 0 && st.Gap != -1 {
				t.Errorf("seed %d: Gap=%g is neither >=0 nor the -1 sentinel", seed, st.Gap)
			}
		}
	}
	if solved < 40 {
		t.Fatalf("only %d models solved; instance mix too degenerate", solved)
	}
}

// TestStatsDeadlinePrecedence pins the documented precedence directly:
// when both limits are set, an expired deadline wins over the node cap.
// A 1-nanosecond deadline is expired before the first poll, so with a
// generous node cap a non-terminal solve must blame the clock — either
// StopDeadline (caught at a poll) or StopLostSubtree (the deadline
// expired inside a node LP, which abandons that subtree) — but never
// StopNodeLimit.
func TestStatsDeadlinePrecedence(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.BuildModel(inst.Problem, core.Options{})
		if err != nil {
			continue
		}
		sol, err := ilp.Solve(m, ilp.Options{TimeLimit: time.Nanosecond, NodeLimit: 1 << 30, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		switch sol.Status {
		case ilp.Optimal, ilp.Infeasible:
			// Solved at the root before the first deadline poll; fine.
		default:
			r := sol.Stats.StopReason
			if r != ilp.StopDeadline && r != ilp.StopLostSubtree {
				t.Errorf("seed %d: status %v, StopReason=%v, want deadline or lost-subtree", seed, sol.Status, r)
			}
		}
	}
}

// TestStatsNodeLimitPrecedence: with only a node cap set, a
// non-terminal solve must report StopNodeLimit (no clock is running, so
// StopDeadline is impossible and subtrees are only lost to numerics).
func TestStatsNodeLimitPrecedence(t *testing.T) {
	limited := 0
	for seed := int64(1); seed <= 30; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.BuildModel(inst.Problem, core.Options{})
		if err != nil {
			continue
		}
		sol, err := ilp.Solve(m, ilp.Options{NodeLimit: 1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		switch sol.Status {
		case ilp.Optimal, ilp.Infeasible:
			// Proven at the root; the cap never bit.
		default:
			limited++
			if r := sol.Stats.StopReason; r != ilp.StopNodeLimit {
				t.Errorf("seed %d: status %v, StopReason=%v, want node-limit", seed, sol.Status, r)
			}
			if sol.Stats.Nodes > 1 {
				t.Errorf("seed %d: NodeLimit=1 but Nodes=%d", seed, sol.Stats.Nodes)
			}
		}
	}
	if limited == 0 {
		t.Fatal("every instance solved at the root; NodeLimit precedence never exercised")
	}
}
