package diffcheck

import (
	"testing"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/randgen"
	"rulefit/internal/verify"
)

// quickOpts is the configuration the quick suite and the fuzz target
// share: small verification sampling budgets, a SAT proof budget so the
// rare counting-hard instance degrades to a recorded skip instead of a
// wall-clock cliff, and multi-worker determinism checks.
func quickOpts(seed int64) Options {
	return Options{
		SATTimeLimit: 2 * time.Second,
		WorkerCounts: []int{1, 2, 8},
		Verify:       verify.Config{SamplesPerRule: 2, RandomSamples: 6, MaxViolations: 3, Seed: seed},
	}
}

// TestQuickDifferentialSuite is the tier-1 differential gate: 200
// seeded random instances, each cross-checked ILP vs SAT vs exhaustive
// enumeration, each feasible placement replayed through the data-plane
// verifier, with the metamorphic battery on every fourth instance.
func TestQuickDifferentialSuite(t *testing.T) {
	const instances = 200
	var exhaustive, infeasible, satSkips, metamorphic int
	for seed := int64(1); seed <= instances; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		opts := quickOpts(seed)
		if seed%4 == 0 {
			opts.Metamorphic = true
			metamorphic++
		}
		res := Check(inst, opts)
		for _, f := range res.Failures {
			t.Errorf("seed %d (%v): %s", seed, inst.Config.Topo, f)
		}
		if res.Exhaustive != nil {
			exhaustive++
		}
		if res.SATUnproven {
			satSkips++
		}
		if res.ILP != nil && res.ILP.Status == core.StatusInfeasible {
			infeasible++
		}
		if t.Failed() && seed > 20 {
			t.Fatal("stopping early after failures")
		}
	}
	t.Logf("%d instances: %d with exhaustive oracle, %d infeasible, %d SAT budget skips, %d metamorphic",
		instances, exhaustive, infeasible, satSkips, metamorphic)
	// The suite is only meaningful if the oracle mix is healthy: the
	// exhaustive oracle must cover a majority, both feasible and
	// infeasible answers must occur, and SAT skips must stay rare.
	if exhaustive < instances/3 {
		t.Errorf("exhaustive oracle covered only %d/%d instances", exhaustive, instances)
	}
	if infeasible == 0 {
		t.Error("no infeasible instances generated; tighten capacity profiles")
	}
	if infeasible > instances*3/4 {
		t.Errorf("%d/%d instances infeasible; loosen capacity profiles", infeasible, instances)
	}
	if satSkips > instances/20 {
		t.Errorf("%d SAT budget skips out of %d; budget too small or SAT regressed", satSkips, instances)
	}
}

// TestWorkersDeterminism pins the acceptance criterion directly: the
// same seed solved with Workers=1, 2, and 8 yields byte-identical
// placements (same fingerprint), on a spread of instance shapes.
func TestWorkersDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var prev string
		for _, w := range []int{1, 2, 8} {
			pl, err := core.Place(inst.Problem, core.Options{Backend: core.BackendILP, Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, w, err)
			}
			fp := Fingerprint(pl)
			if prev != "" && fp != prev {
				t.Errorf("seed %d: workers=%d placement differs from previous worker count:\n%s\nvs\n%s",
					seed, w, fp, prev)
			}
			prev = fp
		}
	}
}

// TestCheckObjectives exercises the differential harness under the
// non-default linear objectives on a few seeds each.
func TestCheckObjectives(t *testing.T) {
	for _, obj := range []core.Objective{core.ObjTraffic, core.ObjWeightedSwitches} {
		for seed := int64(1); seed <= 15; seed++ {
			inst, err := randgen.Generate(randgen.FromSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			opts := quickOpts(seed)
			opts.Core.Objective = obj
			res := Check(inst, opts)
			for _, f := range res.Failures {
				t.Errorf("objective %v seed %d: %s", obj, seed, f)
			}
		}
	}
}

// TestCheckWithMergingAndSlicing runs option combinations the default
// quick sweep doesn't: cross-policy merging, path slicing, and
// redundancy removal.
func TestCheckWithMergingAndSlicing(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		cfg := randgen.FromSeed(seed)
		cfg.SharedDrops = 2 // guarantee merge groups exist
		cfg.TrafficSlices = true
		inst, err := randgen.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := quickOpts(seed)
		opts.Core.Merging = true
		opts.Core.PathSlicing = true
		opts.Core.RemoveRedundant = seed%2 == 0
		res := Check(inst, opts)
		for _, f := range res.Failures {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// TestShrinkPreservesFailure plants a synthetic failure predicate — an
// instance is "failing" whenever its ILP placement is infeasible — by
// shrinking a known-infeasible instance and checking the result is (a)
// still infeasible and (b) no larger than the original.
func TestShrinkPreservesFailure(t *testing.T) {
	var inst *randgen.Instance
	for seed := int64(1); seed <= 100; seed++ {
		cfg := randgen.FromSeed(seed)
		if cfg.Capacity != randgen.CapTight {
			continue
		}
		cand, err := randgen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := core.Place(cand.Problem, core.Options{Backend: core.BackendILP, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if pl.Status == core.StatusInfeasible {
			inst = cand
			break
		}
	}
	if inst == nil {
		t.Skip("no infeasible instance in seed range")
	}
	// An Options value under which infeasibility *is* the failure: an
	// exhaustive-vs-ILP status comparison can't be forced to fail on a
	// healthy solver, so instead shrink against a harness whose verify
	// stage is replaced by the infeasibility predicate via KindUnproven:
	// use Check but treat "still infeasible" as the signal by wrapping.
	failing := func(in *randgen.Instance) bool {
		pl, err := core.Place(in.Problem, core.Options{Backend: core.BackendILP, Workers: 1})
		return err == nil && pl.Status == core.StatusInfeasible
	}
	shrunk := shrinkWith(inst, failing, 8)
	if !failing(shrunk) {
		t.Fatal("shrunk instance lost the property")
	}
	if shrunk.Problem.Network.NumSwitches() > inst.Problem.Network.NumSwitches() {
		t.Error("shrinking grew the network")
	}
	rulesOf := func(in *randgen.Instance) int {
		n := 0
		for _, p := range in.Problem.Policies {
			n += len(p.Rules)
		}
		return n
	}
	if rulesOf(shrunk) > rulesOf(inst) {
		t.Error("shrinking grew the rule count")
	}
	t.Logf("shrunk %d switches/%d rules -> %d switches/%d rules",
		inst.Problem.Network.NumSwitches(), rulesOf(inst),
		shrunk.Problem.Network.NumSwitches(), rulesOf(shrunk))
}

// TestFixtureRoundTrip: instance -> fixture JSON -> instance survives
// with identical solver behavior (same ILP fingerprint).
func TestFixtureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(1); seed <= 25; seed++ {
		inst, err := randgen.Generate(randgen.FromSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		coreOpts := core.Options{Merging: seed%2 == 0, PathSlicing: inst.Config.TrafficSlices}
		fix := NewFixture(inst, coreOpts, "round trip")
		path := dir + "/fix.json"
		if err := fix.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadFixture(path)
		if err != nil {
			t.Fatal(err)
		}
		inst2, opts2, err := loaded.Instance()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if opts2.Merging != coreOpts.Merging || opts2.PathSlicing != coreOpts.PathSlicing {
			t.Fatalf("seed %d: options round trip lost flags", seed)
		}
		solve := func(p *core.Problem) string {
			pl, err := core.Place(p, core.Options{Backend: core.BackendILP, Workers: 1,
				Merging: coreOpts.Merging, PathSlicing: coreOpts.PathSlicing})
			if err != nil {
				t.Fatal(err)
			}
			return Fingerprint(pl)
		}
		if a, b := solve(inst.Problem), solve(inst2.Problem); a != b {
			t.Fatalf("seed %d: fixture round trip changed the placement:\n%s\nvs\n%s", seed, a, b)
		}
	}
}
