package diffcheck

import (
	"math/rand"

	"rulefit/internal/core"
	"rulefit/internal/policy"
	"rulefit/internal/randgen"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// The metamorphic battery: properties relating the optimum of a
// transformed instance to the optimum of the original. These catch bug
// classes that agreement between oracles cannot (all three backends
// share the encoding, so an encoding bug is invisible to them).
//
//  1. Capacity raise — increasing every C_k can only relax Eq. 3, so the
//     optimal objective never increases and feasibility is preserved.
//  2. Switch/rule relabeling — renaming switch IDs, rescaling rule
//     priorities order-preservingly, and reordering the policy list is an
//     isomorphism: status and optimal objective are unchanged.
//  3. Shadowed rule — appending a lowest-priority rule whose match is
//     subsumed by an existing higher-priority rule never changes the
//     optimum when redundancy removal runs on both sides.
//  4. Merging — enabling rule merging can only remove solutions' cost,
//     never add: obj(merged) <= obj(unmerged) and feasibility of the
//     unmerged instance implies feasibility of the merged one.
func checkMetamorphic(inst *randgen.Instance, ilpOpts core.Options, res *Result) {
	base := res.ILP
	prob := inst.Problem

	// 1. Raising every capacity never increases the optimum.
	raised := cloneProblem(prob)
	for _, sw := range raised.Network.Switches() {
		//lint:errcheck sw.ID comes from this network, so unknown-switch cannot happen
		_ = raised.Network.SetSwitchCapacity(sw.ID, sw.Capacity+2)
	}
	if pl, err := core.Place(raised, ilpOpts); err != nil {
		res.addf(KindMetaCapRaise, "solve: %v", err)
	} else if !proven(pl) {
		res.addf(KindMetaCapRaise, "unproven status %v", pl.Status)
	} else if base.Status == core.StatusOptimal {
		if pl.Status != core.StatusOptimal {
			res.addf(KindMetaCapRaise, "raising capacities turned optimal into %v", pl.Status)
		} else if pl.Objective > base.Objective+0.5 {
			res.addf(KindMetaCapRaise, "objective rose from %g to %g", base.Objective, pl.Objective)
		}
	}

	// 2. Relabeling isomorphism. Per-switch cost maps and monitor sets
	// are keyed by switch ID, so the property only holds without them.
	if ilpOpts.SwitchCost == nil && len(ilpOpts.Monitors) == 0 {
		permProb, err := permuteProblem(prob, inst.Config.Seed)
		if err != nil {
			res.addf(KindMetaPermute, "transform: %v", err)
		} else if pl, err := core.Place(permProb, ilpOpts); err != nil {
			res.addf(KindMetaPermute, "solve: %v", err)
		} else if !proven(pl) {
			res.addf(KindMetaPermute, "unproven status %v", pl.Status)
		} else if pl.Status != base.Status {
			res.addf(KindMetaPermute, "status %v != base %v", pl.Status, base.Status)
		} else if base.Status == core.StatusOptimal {
			if d := pl.Objective - base.Objective; d > 0.5 || d < -0.5 {
				res.addf(KindMetaPermute, "objective %g != base %g", pl.Objective, base.Objective)
			}
			if pl.TotalRules != base.TotalRules && ilpOpts.Objective == core.ObjTotalRules {
				res.addf(KindMetaPermute, "total rules %d != base %d", pl.TotalRules, base.TotalRules)
			}
		}
	}

	// 3. A fully-shadowed rule is a no-op under redundancy removal.
	if len(prob.Policies) > 0 && len(prob.Policies[0].Rules) > 0 {
		shOpts := ilpOpts
		shOpts.RemoveRedundant = true
		shBase, err1 := core.Place(prob, shOpts)
		aug, err2 := shadowProblem(prob)
		if err1 != nil || err2 != nil {
			res.addf(KindMetaShadow, "setup: %v / %v", err1, err2)
		} else if pl, err := core.Place(aug, shOpts); err != nil {
			res.addf(KindMetaShadow, "solve: %v", err)
		} else if proven(shBase) && proven(pl) {
			if pl.Status != shBase.Status {
				res.addf(KindMetaShadow, "status %v != base %v", pl.Status, shBase.Status)
			} else if pl.Status == core.StatusOptimal {
				if d := pl.Objective - shBase.Objective; d > 0.5 || d < -0.5 {
					res.addf(KindMetaShadow, "objective %g != base %g", pl.Objective, shBase.Objective)
				}
			}
		}
	}

	// 4. Merging never increases the total-rules optimum.
	if ilpOpts.Objective == core.ObjTotalRules || ilpOpts.Objective == 0 {
		mOpts := ilpOpts
		mOpts.Merging = true
		nOpts := ilpOpts
		nOpts.Merging = false
		mPl, errM := core.Place(prob, mOpts)
		nPl, errN := core.Place(prob, nOpts)
		if errM != nil || errN != nil {
			res.addf(KindMetaMerge, "solve: %v / %v", errM, errN)
		} else if proven(mPl) && proven(nPl) {
			if nPl.Status == core.StatusOptimal && mPl.Status == core.StatusInfeasible {
				res.addf(KindMetaMerge, "merging turned a feasible instance infeasible")
			} else if mPl.Status == core.StatusOptimal && nPl.Status == core.StatusOptimal &&
				mPl.Objective > nPl.Objective+0.5 {
				res.addf(KindMetaMerge, "merged objective %g > unmerged %g", mPl.Objective, nPl.Objective)
			}
		}
	}
}

// cloneProblem deep-copies a problem so transforms cannot alias state.
func cloneProblem(p *core.Problem) *core.Problem {
	rt := routing.NewRouting()
	for _, ing := range p.Routing.Ingresses() {
		for _, path := range p.Routing.Sets[ing].Paths {
			cp := path
			cp.Switches = append([]topology.SwitchID(nil), path.Switches...)
			rt.Add(cp)
		}
	}
	pols := make([]*policy.Policy, len(p.Policies))
	for i, pol := range p.Policies {
		pols[i] = pol.Clone()
	}
	return &core.Problem{Network: p.Network.Clone(), Routing: rt, Policies: pols}
}

// permuteProblem renames every switch ID through a seeded permutation
// (offset so no ID maps to itself by accident), rescales rule priorities
// with the order-preserving map t -> 3t+1, and reverses the policy list.
func permuteProblem(p *core.Problem, seed int64) (*core.Problem, error) {
	rng := rand.New(rand.NewSource(seed*7919 + 3))
	sws := p.Network.Switches()
	order := rng.Perm(len(sws))
	perm := make(map[topology.SwitchID]topology.SwitchID, len(sws))
	for i, sw := range sws {
		perm[sw.ID] = topology.SwitchID(1000 + order[i])
	}
	net := topology.NewNetwork()
	for _, sw := range sws {
		if err := net.AddSwitch(topology.Switch{ID: perm[sw.ID], Capacity: sw.Capacity, Name: sw.Name}); err != nil {
			return nil, err
		}
	}
	for _, sw := range sws {
		for _, nb := range p.Network.Neighbors(sw.ID) {
			if nb > sw.ID {
				if err := net.AddLink(perm[sw.ID], perm[nb]); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, pt := range p.Network.Ports() {
		pt.Switch = perm[pt.Switch]
		if err := net.AddPort(pt); err != nil {
			return nil, err
		}
	}
	rt := routing.NewRouting()
	for _, ing := range p.Routing.Ingresses() {
		for _, path := range p.Routing.Sets[ing].Paths {
			np := routing.Path{Ingress: path.Ingress, Egress: path.Egress, Traffic: path.Traffic, HasTraffic: path.HasTraffic}
			for _, s := range path.Switches {
				np.Switches = append(np.Switches, perm[s])
			}
			rt.Add(np)
		}
	}
	pols := make([]*policy.Policy, 0, len(p.Policies))
	for i := len(p.Policies) - 1; i >= 0; i-- {
		cp := p.Policies[i].Clone()
		for j := range cp.Rules {
			cp.Rules[j].Priority = cp.Rules[j].Priority*3 + 1
		}
		pols = append(pols, cp)
	}
	out := &core.Problem{Network: net, Routing: rt, Policies: pols}
	return out, out.Validate()
}

// shadowProblem appends to the first policy a lowest-priority rule whose
// match duplicates the policy's top rule (hence fully shadowed), with
// the opposite action so a redundancy-removal bug that respects actions
// incorrectly would change semantics and be caught.
func shadowProblem(p *core.Problem) (*core.Problem, error) {
	out := cloneProblem(p)
	pol := out.Policies[0]
	shadow := pol.Rules[0]
	shadow.Priority = pol.Rules[len(pol.Rules)-1].Priority - 1
	if shadow.Action == policy.Permit {
		shadow.Action = policy.Drop
	} else {
		shadow.Action = policy.Permit
	}
	pol.Rules = append(pol.Rules, shadow)
	return out, pol.Validate()
}
