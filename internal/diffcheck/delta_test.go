package diffcheck

import (
	"path/filepath"
	"testing"

	"rulefit/internal/core"
	"rulefit/internal/randgen"
	"rulefit/internal/spec"
	"rulefit/internal/state"
)

// deltaSuiteOpts varies the encoding-relevant options across seeds so
// the delta oracle covers merging and redundancy removal too. No time
// limit: the byte-identity contract only holds for proven answers, and
// quick-suite instances prove in milliseconds.
func deltaSuiteOpts(seed int64) core.Options {
	return core.Options{
		Merging:         seed%2 == 0,
		RemoveRedundant: seed%3 == 0,
	}
}

// deltaInstance generates the quick-suite instance for a seed in
// explicit spec form.
func deltaInstance(t *testing.T, seed int64) *spec.Problem {
	t.Helper()
	inst, err := randgen.Generate(randgen.FromSeed(seed))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return spec.FromCore(inst.Problem)
}

// TestQuickDeltaDifferentialSuite replays seeded delta streams on 120
// generated instances, comparing every stateful-session answer against
// a cold solve of the fully-updated instance. This is the tier-1 gate
// for the session layer's byte-identity contract; it runs under -race
// in CI's delta-smoke job.
func TestQuickDeltaDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("delta differential suite is not -short")
	}
	paths := map[string]int{}
	for seed := int64(1); seed <= 120; seed++ {
		seed := seed
		sp := deltaInstance(t, seed)
		deltas, err := randgen.GenerateDeltas(sp, 5, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := CheckDeltas(sp, deltas, deltaSuiteOpts(seed))
		for _, f := range res.Failures {
			t.Errorf("seed %d: %s", seed, f)
		}
		for p, n := range res.Paths {
			paths[p] += n
		}
	}
	// The suite must exercise the whole fallback ladder, or the oracle
	// is silently weaker than it claims.
	for _, p := range []string{state.PathIdentity, state.PathWarm, state.PathCold} {
		if paths[p] == 0 {
			t.Errorf("no delta step answered via the %q path (path counts: %v)", p, paths)
		}
	}
	t.Logf("path coverage: %v", paths)
}

// TestDeltaAddRemoveRestoresFingerprint is the first metamorphic delta
// property: adding a rule and removing it again must restore the exact
// placement fingerprint, and the session must answer the restored
// state from its memo (identity path) rather than re-solving.
func TestDeltaAddRemoveRestoresFingerprint(t *testing.T) {
	for _, seed := range []int64{3, 11, 29, 64} {
		sp := deltaInstance(t, seed)
		opts := deltaSuiteOpts(seed)
		mgr := state.NewManager(state.Config{})
		sess, createRes, err := mgr.Create(sp, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := Fingerprint(createRes.Placement)

		pol := sp.Policies[0]
		maxPrio := 0
		for _, r := range pol.Rules {
			if r.Priority > maxPrio {
				maxPrio = r.Priority
			}
		}
		pattern := make([]byte, len(pol.Rules[0].Pattern))
		for i := range pattern {
			pattern[i] = '*'
		}
		pattern[len(pattern)-1] = '0'
		add := &spec.Delta{Op: spec.OpAddRule, Ingress: pol.Ingress,
			Rule: &spec.Rule{Pattern: string(pattern), Action: "drop", Priority: maxPrio + 1}}
		if _, err := sess.Delta([]spec.Delta{*add}, nil, nil); err != nil {
			t.Fatalf("seed %d add: %v", seed, err)
		}
		res, err := sess.Delta([]spec.Delta{{
			Op: spec.OpRemoveRule, Ingress: add.Ingress, Priority: add.Rule.Priority,
		}}, nil, nil)
		if err != nil {
			t.Fatalf("seed %d remove: %v", seed, err)
		}
		if fp := Fingerprint(res.Placement); fp != base {
			t.Errorf("seed %d: add-then-remove changed the placement:\n%s\nvs\n%s", seed, fp, base)
		}
		if res.Path != state.PathIdentity {
			t.Errorf("seed %d: restored state answered via %q, want identity", seed, res.Path)
		}
	}
}

// TestDeltaInterleavingsAgree is the second metamorphic delta
// property: independent deltas (touching different policies/switches)
// applied in either order must reach the same final placement.
func TestDeltaInterleavingsAgree(t *testing.T) {
	for _, seed := range []int64{5, 18, 42} {
		sp := deltaInstance(t, seed)
		opts := deltaSuiteOpts(seed)

		// Two independent deltas: a rule add on the first policy and a
		// capacity raise on the last switch.
		pol := sp.Policies[0]
		width := len(pol.Rules[0].Pattern)
		maxPrio := 0
		for _, r := range pol.Rules {
			if r.Priority > maxPrio {
				maxPrio = r.Priority
			}
		}
		pattern := make([]byte, width)
		for i := range pattern {
			pattern[i] = '*'
		}
		pattern[0] = '1'
		d1 := spec.Delta{Op: spec.OpAddRule, Ingress: pol.Ingress,
			Rule: &spec.Rule{Pattern: string(pattern), Action: "drop", Priority: maxPrio + 1}}
		sw := sp.Topology.SwitchList[len(sp.Topology.SwitchList)-1]
		d2 := spec.Delta{Op: spec.OpSetCapacity, Switch: sw.ID, Capacity: sw.Capacity + 3}

		final := make([]string, 2)
		for i, order := range [][]spec.Delta{{d1, d2}, {d2, d1}} {
			mgr := state.NewManager(state.Config{})
			sess, _, err := mgr.Create(sp, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			var last *state.Result
			for _, d := range order {
				if last, err = sess.Delta([]spec.Delta{d}, nil, nil); err != nil {
					t.Fatalf("seed %d order %d: %v", seed, i, err)
				}
			}
			final[i] = Fingerprint(last.Placement)
		}
		if final[0] != final[1] {
			t.Errorf("seed %d: interleavings diverge:\n%s\nvs\n%s", seed, final[0], final[1])
		}
	}
}

// TestDeltaCapacityRaiseNeverWorsens is the third metamorphic delta
// property: raising switch capacities through the session can only
// relax the instance, so a proven-optimal objective never increases.
func TestDeltaCapacityRaiseNeverWorsens(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 40 && checked < 8; seed++ {
		sp := deltaInstance(t, seed)
		opts := deltaSuiteOpts(seed)
		mgr := state.NewManager(state.Config{})
		sess, createRes, err := mgr.Create(sp, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if createRes.Placement.Status != core.StatusOptimal {
			continue
		}
		checked++
		base := createRes.Placement.Objective
		var raises []spec.Delta
		for _, sw := range sp.Topology.SwitchList {
			raises = append(raises, spec.Delta{Op: spec.OpSetCapacity, Switch: sw.ID, Capacity: sw.Capacity + 2})
		}
		res, err := sess.Delta(raises, nil, nil)
		if err != nil {
			t.Fatalf("seed %d raise: %v", seed, err)
		}
		if res.Placement.Status != core.StatusOptimal {
			t.Errorf("seed %d: capacity raise turned optimal into %v", seed, res.Placement.Status)
			continue
		}
		if res.Placement.Objective > base+0.5 {
			t.Errorf("seed %d: objective rose from %g to %g after capacity raise", seed, base, res.Placement.Objective)
		}
	}
	if checked == 0 {
		t.Fatal("no optimal instance found in 40 seeds; generator drifted")
	}
}

// TestDeltaRegressions replays every committed delta fixture under
// testdata/regressions/delta/ through the delta oracle. Shrunk
// reproducers from cmd/diffcheck land here; exemplar sequences are
// committed by hand to pin the wire format.
func TestDeltaRegressions(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "regressions", "delta", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no delta regression fixtures found; the loader is miswired")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			fix, err := LoadDeltaFixture(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := fix.Replay()
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range res.Failures {
				t.Errorf("%s: %s (note: %s)", path, f, fix.Note)
			}
		})
	}
}

// TestShrinkDeltasMinimizes checks the sequence shrinker against a
// synthetic predicate failure injected via an always-diverging
// comparison: a sequence that fails because of one specific delta must
// shrink to (nearly) that delta alone.
func TestShrinkDeltasMinimizes(t *testing.T) {
	sp := deltaInstance(t, 7)
	opts := deltaSuiteOpts(7)
	deltas, err := randgen.GenerateDeltas(sp, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy sequence must come back unshrunk (not reproducible).
	if got := ShrinkDeltas(sp, deltas, opts); len(got) != len(deltas) {
		t.Fatalf("healthy sequence shrunk from %d to %d deltas", len(deltas), len(got))
	}
}
