package diffcheck

import (
	"rulefit/internal/core"
	"rulefit/internal/policy"
	"rulefit/internal/randgen"
	"rulefit/internal/routing"
	"rulefit/internal/topology"
)

// Shrink greedily minimizes a failing instance while the failure
// persists: it tries deleting whole policies, individual rules,
// individual paths, and finally strips switches no remaining path
// touches. Each candidate deletion is kept only if Check still fails
// (any failure kind — a shrink that morphs one bug into another still
// yields a useful reproducer). maxRounds bounds the number of full
// sweeps (<= 0 means 8); each kept deletion restarts the sweep, so the
// result is 1-minimal with respect to these deletions when the loop
// runs to quiescence.
func Shrink(inst *randgen.Instance, opts Options, maxRounds int) *randgen.Instance {
	return shrinkWith(inst, func(cand *randgen.Instance) bool {
		return Check(cand, opts).Failed()
	}, maxRounds)
}

// shrinkWith is the predicate-generic shrinker behind Shrink: candidates
// failing Validate are never accepted, everything else is judged by the
// caller's predicate.
func shrinkWith(inst *randgen.Instance, pred func(*randgen.Instance) bool, maxRounds int) *randgen.Instance {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	failing := func(p *core.Problem) bool {
		if p.Validate() != nil {
			return false
		}
		return pred(&randgen.Instance{Config: inst.Config, Problem: p})
	}
	cur := inst.Problem
	if !failing(cur) {
		return inst // not reproducible; return unshrunk
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		// Drop whole policies.
		for i := 0; i < len(cur.Policies); i++ {
			cand := cloneProblem(cur)
			cand.Policies = append(cand.Policies[:i], cand.Policies[i+1:]...)
			if failing(cand) {
				cur, changed = cand, true
				i--
			}
		}
		// Drop individual rules (keep at least one per policy).
		for pi := 0; pi < len(cur.Policies); pi++ {
			for ri := 0; ri < len(cur.Policies[pi].Rules); ri++ {
				if len(cur.Policies[pi].Rules) <= 1 {
					break
				}
				cand := cloneProblem(cur)
				pol := cand.Policies[pi]
				pol.Rules = append(pol.Rules[:ri], pol.Rules[ri+1:]...)
				if failing(cand) {
					cur, changed = cand, true
					ri--
				}
			}
		}
		// Drop individual paths.
		for _, ing := range cur.Routing.Ingresses() {
			for pi := 0; pi < len(cur.Routing.Sets[ing].Paths); pi++ {
				cand := cloneProblem(cur)
				ps := cand.Routing.Sets[ing]
				if len(ps.Paths) <= 1 {
					break
				}
				ps.Paths = append(ps.Paths[:pi], ps.Paths[pi+1:]...)
				if failing(cand) {
					cur, changed = cand, true
					pi--
				}
			}
		}
		if !changed {
			break
		}
	}
	if cand := stripUnused(cur); cand != cur && failing(cand) {
		cur = cand
	}
	return &randgen.Instance{Config: inst.Config, Problem: cur}
}

// stripUnused removes switches no remaining path traverses (and their
// links), plus ports that neither terminate a path nor host a policy.
// Returns the input unchanged if nothing is strippable.
func stripUnused(p *core.Problem) *core.Problem {
	usedSw := make(map[topology.SwitchID]bool)
	usedPort := make(map[topology.PortID]bool)
	for _, ing := range p.Routing.Ingresses() {
		usedPort[ing] = true
		for _, path := range p.Routing.Sets[ing].Paths {
			usedPort[path.Egress] = true
			for _, s := range path.Switches {
				usedSw[s] = true
			}
		}
	}
	for _, pol := range p.Policies {
		usedPort[topology.PortID(pol.Ingress)] = true
	}
	strippable := false
	for _, sw := range p.Network.Switches() {
		if !usedSw[sw.ID] {
			strippable = true
		}
	}
	for _, pt := range p.Network.Ports() {
		if !usedPort[pt.ID] {
			strippable = true
		}
	}
	if !strippable {
		return p
	}
	net := topology.NewNetwork()
	for _, sw := range p.Network.Switches() {
		if usedSw[sw.ID] {
			//lint:errcheck switches are copied from a valid network, so duplicates cannot happen
			_ = net.AddSwitch(sw)
		}
	}
	for _, sw := range p.Network.Switches() {
		if !usedSw[sw.ID] {
			continue
		}
		for _, nb := range p.Network.Neighbors(sw.ID) {
			if nb > sw.ID && usedSw[nb] {
				//lint:errcheck both endpoints were just added, so AddLink cannot fail
				_ = net.AddLink(sw.ID, nb)
			}
		}
	}
	for _, pt := range p.Network.Ports() {
		if usedPort[pt.ID] && usedSw[pt.Switch] {
			//lint:errcheck ports are copied from a valid network onto switches kept above
			_ = net.AddPort(pt)
		}
	}
	rt := routing.NewRouting()
	for _, ing := range p.Routing.Ingresses() {
		for _, path := range p.Routing.Sets[ing].Paths {
			cp := path
			cp.Switches = append([]topology.SwitchID(nil), path.Switches...)
			rt.Add(cp)
		}
	}
	pols := make([]*policy.Policy, len(p.Policies))
	for i, pol := range p.Policies {
		pols[i] = pol.Clone()
	}
	return &core.Problem{Network: net, Routing: rt, Policies: pols}
}
