package diffcheck

import (
	"path/filepath"
	"testing"
	"time"

	"rulefit/internal/verify"
)

// TestRegressions auto-replays every fixture under
// testdata/regressions/ through the full differential harness. Fixtures
// land here two ways: cmd/diffcheck writes shrunk reproducers for every
// soak failure, and interesting instances are exported by hand with
// -export. Either way, once committed they are tier-1 tests forever.
func TestRegressions(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "regressions", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no regression fixtures found; the loader is miswired")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			fix, err := LoadFixture(path)
			if err != nil {
				t.Fatal(err)
			}
			inst, coreOpts, err := fix.Instance()
			if err != nil {
				t.Fatal(err)
			}
			res := Check(inst, Options{
				Core:         coreOpts,
				Metamorphic:  true,
				SATTimeLimit: 2 * time.Second,
				WorkerCounts: []int{1, 2, 8},
				Verify:       verify.Config{SamplesPerRule: 4, RandomSamples: 8, MaxViolations: 3, Seed: fix.Seed},
			})
			for _, f := range res.Failures {
				t.Errorf("%s: %s (note: %s)", path, f, fix.Note)
			}
		})
	}
}
