// Package diffcheck is the differential-testing harness that
// cross-checks the repo's three independent decision procedures for the
// placement problem — the MILP branch & bound (internal/ilp), the
// CDCL/PB search (internal/sat), and exhaustive enumeration
// (core.PlaceExhaustive) — on randomly generated instances
// (internal/randgen), and asserts the paper's invariants (Eqs. 1–3)
// end-to-end through data-plane verification (internal/verify).
//
// The oracle hierarchy (DESIGN.md §10): exhaustive enumeration is
// trusted most but only answers tiny instances; the SAT backend scales
// further and shares nothing with the ILP solver except the encoding;
// the verify package closes the loop by checking placements against the
// original policies on the simulated data plane, independent of the
// encoding entirely. A battery of metamorphic properties (metamorphic.go)
// covers what no single oracle can: how the optimum must respond to
// instance transformations.
package diffcheck

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/randgen"
	"rulefit/internal/verify"
)

// Failure kinds reported by Check.
const (
	KindSolveError   = "solve-error" // a backend returned an error
	KindUnproven     = "unproven"    // non-terminal status with no limits set
	KindStatus       = "status-mismatch"
	KindObjective    = "objective-mismatch"
	KindObjTotal     = "objective-vs-totalrules"
	KindStatsSum     = "stats-sum"
	KindWorkers      = "workers-determinism"
	KindTables       = "tables"
	KindSemantics    = "semantics"
	KindSemanticsExh = "semantics-exhaustive"
	KindCapacity     = "capacity"
	KindMetaCapRaise = "meta-capacity-raise"
	KindMetaPermute  = "meta-permutation"
	KindMetaShadow   = "meta-shadowed-rule"
	KindMetaMerge    = "meta-merging"
)

// Failure is one invariant violation found on an instance.
type Failure struct {
	Kind   string
	Detail string
}

// String renders the failure.
func (f Failure) String() string { return f.Kind + ": " + f.Detail }

// Options configures a differential check.
type Options struct {
	// Core carries the placement options shared by all backends
	// (Backend and Workers are overridden per oracle). ObjMinMaxLoad is
	// not supported (no SAT/exhaustive counterpart).
	Core core.Options
	// MaxExhaustiveVars bounds the exhaustive oracle's enumeration
	// (0 = 16 variables; negative skips the oracle entirely).
	MaxExhaustiveVars int
	// SATTimeLimit caps the SAT oracle separately (0 = inherit
	// Core.TimeLimit). The SAT backend's optimality proof is a counting
	// argument — exponential for clause learning without cardinality
	// reasoning — so rare instances that the ILP bound closes instantly
	// can stall it. A SAT result that is unproven within an explicit
	// budget is recorded as SATUnproven, not a failure.
	SATTimeLimit time.Duration
	// ExhaustiveHeaderWidth is the maximum policy width (bits) for
	// which the data-plane verifier runs exhaustively over the header
	// space (0 = 12; negative disables the exhaustive sweep).
	ExhaustiveHeaderWidth int
	// Verify configures the sampling data-plane verifier.
	Verify verify.Config
	// SkipVerify disables data-plane verification (solver-only checks).
	SkipVerify bool
	// Metamorphic enables the property battery (roughly four extra ILP
	// solves per instance).
	Metamorphic bool
	// WorkerCounts lists the ILP worker counts to run; every count must
	// produce a byte-identical placement (nil = {1}).
	WorkerCounts []int
}

func (o Options) withDefaults() Options {
	if o.MaxExhaustiveVars == 0 {
		o.MaxExhaustiveVars = 16
	}
	if o.ExhaustiveHeaderWidth == 0 {
		o.ExhaustiveHeaderWidth = 12
	}
	if len(o.WorkerCounts) == 0 {
		o.WorkerCounts = []int{1}
	}
	return o
}

// Result is the outcome of checking one instance.
type Result struct {
	Config randgen.Config
	// ILP, SAT, and Exhaustive are the placements from each oracle
	// (Exhaustive is nil when the instance exceeded the budget).
	ILP, SAT, Exhaustive *core.Placement
	// ExhaustiveSkipped records a budget skip (not a failure).
	ExhaustiveSkipped bool
	// SATUnproven records that the SAT oracle hit its explicit time
	// budget without proving optimality (not a failure; see
	// Options.SATTimeLimit).
	SATUnproven bool
	Failures    []Failure
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// addf records a failure.
func (r *Result) addf(kind, format string, args ...any) {
	r.Failures = append(r.Failures, Failure{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Summary renders the failures for logs.
func (r *Result) Summary() string {
	if !r.Failed() {
		return "ok"
	}
	parts := make([]string, len(r.Failures))
	for i, f := range r.Failures {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// proven reports whether a placement's status is a terminal answer
// (proven optimal or proven infeasible).
func proven(pl *core.Placement) bool {
	return pl != nil && (pl.Status == core.StatusOptimal || pl.Status == core.StatusInfeasible)
}

// Check runs every oracle on the instance and cross-validates the
// results. It never returns an error: everything unexpected lands in
// Result.Failures so soak loops can keep going.
func Check(inst *randgen.Instance, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{Config: inst.Config}
	prob := inst.Problem

	ilpOpts := opts.Core
	ilpOpts.Backend = core.BackendILP
	ilpOpts.Workers = opts.WorkerCounts[0]
	ilpPl, err := core.Place(prob, ilpOpts)
	if err != nil {
		res.addf(KindSolveError, "ilp: %v", err)
		return res
	}
	res.ILP = ilpPl
	base := Fingerprint(ilpPl)
	for _, w := range opts.WorkerCounts[1:] {
		wOpts := ilpOpts
		wOpts.Workers = w
		wPl, err := core.Place(prob, wOpts)
		if err != nil {
			res.addf(KindSolveError, "ilp workers=%d: %v", w, err)
			continue
		}
		if fp := Fingerprint(wPl); fp != base {
			res.addf(KindWorkers, "workers=%d placement differs from workers=%d:\n%s\nvs\n%s",
				w, opts.WorkerCounts[0], fp, base)
		}
	}

	satOpts := opts.Core
	satOpts.Backend = core.BackendSAT
	if opts.SATTimeLimit > 0 {
		satOpts.TimeLimit = opts.SATTimeLimit
	}
	satPl, err := core.Place(prob, satOpts)
	if err != nil {
		res.addf(KindSolveError, "sat: %v", err)
	} else if satOpts.TimeLimit > 0 && !proven(satPl) {
		res.SATUnproven = true
	} else {
		res.SAT = satPl
	}

	if opts.MaxExhaustiveVars > 0 {
		exhPl, err := core.PlaceExhaustive(prob, opts.Core, opts.MaxExhaustiveVars)
		switch {
		case errors.Is(err, core.ErrExhaustiveTooLarge):
			res.ExhaustiveSkipped = true
		case err != nil:
			res.addf(KindSolveError, "exhaustive: %v", err)
		default:
			res.Exhaustive = exhPl
		}
	} else {
		res.ExhaustiveSkipped = true
	}

	oracles := []struct {
		name string
		pl   *core.Placement
	}{{"ilp", res.ILP}, {"sat", res.SAT}, {"exhaustive", res.Exhaustive}}

	// With no time limit every oracle must prove its answer; anything
	// else is a solver bug (numerics, lost subtrees), not a timeout.
	// (The SAT oracle is exempt when it ran under an explicit budget —
	// that case was already diverted to SATUnproven above.)
	if opts.Core.TimeLimit == 0 {
		for _, o := range oracles {
			if o.pl != nil && !proven(o.pl) {
				res.addf(KindUnproven, "%s returned %v with no limits (stop=%v)",
					o.name, o.pl.Status, o.pl.Stats.StopReason)
			}
		}
	}

	// Pairwise agreement on status and optimal objective.
	for i := 0; i < len(oracles); i++ {
		for j := i + 1; j < len(oracles); j++ {
			a, b := oracles[i], oracles[j]
			if !proven(a.pl) || !proven(b.pl) {
				continue
			}
			if a.pl.Status != b.pl.Status {
				res.addf(KindStatus, "%s=%v but %s=%v", a.name, a.pl.Status, b.name, b.pl.Status)
				continue
			}
			if a.pl.Status == core.StatusOptimal &&
				math.Abs(a.pl.Objective-b.pl.Objective) > 0.5 {
				res.addf(KindObjective, "%s=%g but %s=%g", a.name, a.pl.Objective, b.name, b.pl.Objective)
			}
		}
	}

	for _, o := range oracles {
		res.checkPlacement(o.name, o.pl, inst, opts)
	}

	if opts.Metamorphic && proven(res.ILP) {
		checkMetamorphic(inst, ilpOpts, res)
	}
	return res
}

// checkPlacement validates one oracle's placement in isolation:
// objective/slot-count consistency, solver-stats accounting, and
// data-plane semantics plus capacity audits.
func (res *Result) checkPlacement(name string, pl *core.Placement, inst *randgen.Instance, opts Options) {
	if pl == nil || (pl.Status != core.StatusOptimal && pl.Status != core.StatusFeasible) {
		return
	}
	obj := opts.Core.Objective
	if obj == 0 {
		obj = core.ObjTotalRules
	}
	if obj == core.ObjTotalRules && int(math.Round(pl.Objective)) != pl.TotalRules {
		res.addf(KindObjTotal, "%s: objective %g != total rules %d", name, pl.Objective, pl.TotalRules)
	}
	if name == "ilp" {
		sum := pl.Stats.Branched + pl.Stats.PrunedBound + pl.Stats.PrunedInfeasible +
			pl.Stats.IntegralLeaves + pl.Stats.LostSubtrees
		if sum != pl.Stats.BnBNodes {
			res.addf(KindStatsSum, "outcome counters sum to %d, nodes %d", sum, pl.Stats.BnBNodes)
		}
	}
	if opts.SkipVerify {
		return
	}
	prob := inst.Problem
	net, err := pl.BuildTables(prob)
	if err != nil {
		res.addf(KindTables, "%s: %v", name, err)
		return
	}
	if v := verify.Semantics(net, prob.Routing, prob.Policies, opts.Verify); len(v) > 0 {
		res.addf(KindSemantics, "%s: %d violations, first: %v", name, len(v), v[0])
	}
	if v := verify.Capacities(net, prob.Network); len(v) > 0 {
		res.addf(KindCapacity, "%s: %d violations, first: %v", name, len(v), v[0])
	}
	w := inst.Config.Width
	if w > 0 && opts.ExhaustiveHeaderWidth > 0 && w <= opts.ExhaustiveHeaderWidth {
		if v := verify.Exhaustive(net, prob.Routing, prob.Policies); len(v) > 0 {
			res.addf(KindSemanticsExh, "%s: %d violations, first: %v", name, len(v), v[0])
		}
	}
}

// Fingerprint renders a placement as a canonical string: status,
// objective, and every rule/merge installation. Byte-equal fingerprints
// mean identical placements; used by the worker-determinism check.
func Fingerprint(pl *core.Placement) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "status=%v obj=%.6f total=%d\n", pl.Status, pl.Objective, pl.TotalRules)
	for pi := range pl.Assign {
		for ri := range pl.Assign[pi] {
			if len(pl.Assign[pi][ri]) > 0 {
				fmt.Fprintf(&sb, "p%d/r%d:%v\n", pi, ri, pl.Assign[pi][ri])
			}
		}
	}
	for g := range pl.MergedAt {
		if len(pl.MergedAt[g]) > 0 {
			fmt.Fprintf(&sb, "m%d:%v\n", g, pl.MergedAt[g])
		}
	}
	return sb.String()
}
