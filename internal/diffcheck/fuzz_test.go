package diffcheck

import (
	"testing"
	"time"

	"rulefit/internal/randgen"
	"rulefit/internal/verify"
)

// FuzzPlaceDifferential lets the fuzzer drive the quick-suite seed
// space: each input seed derives a full instance configuration
// (topology family, sizes, width, overlap, capacity profile), and the
// instance is cross-checked ILP vs SAT vs exhaustive with data-plane
// verification. Coverage feedback steers the fuzzer toward seeds that
// reach unusual solver paths — corners a fixed seed sweep misses.
func FuzzPlaceDifferential(f *testing.F) {
	for _, s := range []int64{1, 2, 17, 42, 45, 1000003} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		cfg := randgen.FromSeed(seed)
		// Keep per-exec cost bounded: quick-suite configs are already
		// tiny, but cap the rule count against future FromSeed changes.
		if cfg.RulesPerPolicy > 8 {
			cfg.RulesPerPolicy = 8
		}
		inst, err := randgen.Generate(cfg)
		if err != nil {
			t.Skip("ungeneratable config")
		}
		opts := Options{
			SATTimeLimit: 2 * time.Second,
			WorkerCounts: []int{1, 4},
			Metamorphic:  seed%8 == 0,
			Verify:       verify.Config{SamplesPerRule: 2, RandomSamples: 4, MaxViolations: 3, Seed: seed},
		}
		res := Check(inst, opts)
		for _, fl := range res.Failures {
			t.Errorf("seed %d (%v): %s", seed, inst.Config.Topo, fl)
		}
	})
}
