package match

import (
	"math/rand"
	"testing"
)

// benchTernaries builds a pool of realistic 5-tuple matches.
func benchTernaries(n int, seed int64) []Ternary {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Ternary, n)
	for i := range out {
		out[i] = FiveTuple{
			SrcIP: rng.Uint32(), SrcPfxLen: 8 + rng.Intn(17),
			DstIP: rng.Uint32(), DstPfxLen: 8 + rng.Intn(17),
			ProtoAny: true,
		}.Ternary()
	}
	return out
}

func BenchmarkOverlaps(b *testing.B) {
	ts := benchTernaries(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ts[i%len(ts)]
		c := ts[(i*7+3)%len(ts)]
		_ = a.Overlaps(c)
	}
}

func BenchmarkIntersect(b *testing.B) {
	ts := benchTernaries(256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ts[i%len(ts)]
		c := ts[(i*11+5)%len(ts)]
		_, _ = a.Intersect(c)
	}
}

func BenchmarkSubsumes(b *testing.B) {
	ts := benchTernaries(256, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ts[i%len(ts)].Subsumes(ts[(i*13+7)%len(ts)])
	}
}

func BenchmarkMatchesWords(b *testing.B) {
	ts := benchTernaries(64, 4)
	rng := rand.New(rand.NewSource(5))
	headers := make([][]uint64, 64)
	for i := range headers {
		headers[i] = Header{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(1 << 16)), DstPort: uint16(rng.Intn(1 << 16)),
			Proto: uint8(rng.Intn(256)),
		}.Words()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ts[i%len(ts)].MatchesWords(headers[i%len(headers)])
	}
}

func BenchmarkSubtract(b *testing.B) {
	ts := benchTernaries(128, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ts[i%len(ts)].Subtract(ts[(i*17+9)%len(ts)])
	}
}
