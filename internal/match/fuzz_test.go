package match

import (
	"strings"
	"testing"
)

// FuzzTernaryOverlap cross-checks the ternary set algebra — Overlaps,
// Intersect, Subsumes, Subtract, String/Parse — against itself and,
// for narrow widths, against exhaustive header enumeration. Overlaps/
// Subsumes/Intersect are the primitives the placement encoder's rule
// dependency analysis (Eq. 1) is built on, so a wrong answer here means
// silently wrong placements.
func FuzzTernaryOverlap(f *testing.F) {
	f.Add("1*0*", "10**")
	f.Add("****", "1111")
	f.Add("0", "1")
	f.Add("", "")
	f.Add("10*1*0", "10*1*0")
	f.Add("1*********0", "0*********1")
	f.Add(strings.Repeat("*", 64), strings.Repeat("1", 64))
	f.Add(strings.Repeat("10", 33)+"*", strings.Repeat("*", 67))
	f.Fuzz(func(t *testing.T, sa, sb string) {
		a, errA := ParseTernary(sa)
		b, errB := ParseTernary(sb)
		if errA != nil || errB != nil {
			return
		}
		if a.Width() > 128 || b.Width() > 128 {
			return
		}

		// String/Parse are inverses.
		for _, x := range []Ternary{a, b} {
			rt, err := ParseTernary(x.String())
			if err != nil || !rt.Equal(x) {
				t.Fatalf("round trip broke %q: %v", x.String(), err)
			}
		}

		// Reflexivity: every ternary matches at least one header.
		if !a.Overlaps(a) || !a.Subsumes(a) {
			t.Fatalf("%q does not overlap/subsume itself", sa)
		}
		if inter, ok := a.Intersect(a); !ok || !inter.Equal(a) {
			t.Fatalf("%q: self-intersection is not identity", sa)
		}
		if rem := a.Subtract(a); len(rem) != 0 {
			t.Fatalf("%q: self-subtraction left %d pieces", sa, len(rem))
		}

		// Symmetry.
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("Overlaps(%q,%q) is asymmetric", sa, sb)
		}

		inter, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			t.Fatalf("Intersect ok=%v but Overlaps=%v for %q,%q", ok, a.Overlaps(b), sa, sb)
		}
		if ok && (!a.Subsumes(inter) || !b.Subsumes(inter)) {
			t.Fatalf("intersection of %q,%q not subsumed by both", sa, sb)
		}
		if a.Subsumes(b) && !a.Overlaps(b) {
			t.Fatalf("%q subsumes %q but does not overlap it", sa, sb)
		}

		if a.Width() != b.Width() {
			// Cross-width operations must all answer "disjoint".
			if a.Overlaps(b) || a.Subsumes(b) || ok {
				t.Fatalf("cross-width ternaries %q,%q reported a relation", sa, sb)
			}
			return
		}

		pieces := a.Subtract(b)
		for i, p := range pieces {
			if !a.Subsumes(p) {
				t.Fatalf("Subtract(%q,%q): piece %d not inside a", sa, sb, i)
			}
			if p.Overlaps(b) {
				t.Fatalf("Subtract(%q,%q): piece %d overlaps b", sa, sb, i)
			}
			for j := i + 1; j < len(pieces); j++ {
				if p.Overlaps(pieces[j]) {
					t.Fatalf("Subtract(%q,%q): pieces %d and %d overlap", sa, sb, i, j)
				}
			}
		}

		// Exhaustive ground truth for narrow widths.
		w := a.Width()
		if w == 0 || w > 12 {
			return
		}
		sawBoth := false
		subsumeHolds := true
		for hv := uint64(0); hv < 1<<uint(w); hv++ {
			h := []uint64{hv}
			inA, inB := a.MatchesWords(h), b.MatchesWords(h)
			if inA && inB {
				sawBoth = true
				if !ok || !inter.MatchesWords(h) {
					t.Fatalf("header %b in both %q,%q but not in intersection", hv, sa, sb)
				}
			} else if ok && inter.MatchesWords(h) {
				t.Fatalf("header %b in intersection of %q,%q but not both", hv, sa, sb)
			}
			if inB && !inA {
				subsumeHolds = false
			}
			nPieces := 0
			for _, p := range pieces {
				if p.MatchesWords(h) {
					nPieces++
				}
			}
			want := 0
			if inA && !inB {
				want = 1
			}
			if nPieces != want {
				t.Fatalf("header %b matched %d Subtract pieces, want %d (%q minus %q)", hv, nPieces, want, sa, sb)
			}
		}
		if sawBoth != a.Overlaps(b) {
			t.Fatalf("Overlaps(%q,%q)=%v but enumeration says %v", sa, sb, a.Overlaps(b), sawBoth)
		}
		if subsumeHolds != a.Subsumes(b) {
			t.Fatalf("Subsumes(%q,%q)=%v but enumeration says %v", sa, sb, a.Subsumes(b), subsumeHolds)
		}
	})
}
