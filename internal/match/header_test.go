package match

import (
	"math/rand"
	"testing"
)

func TestFiveTupleTernary(t *testing.T) {
	ft := FiveTuple{
		SrcIP: 0x0A000000, SrcPfxLen: 8, // 10.0.0.0/8
		DstIP: 0x0B000000, DstPfxLen: 16, // 11.0.0.0/16
		DstPort: 80, DstExact: true,
		Proto: 6,
	}
	tn := ft.Ternary()
	if tn.Width() != HeaderWidth {
		t.Fatalf("width = %d", tn.Width())
	}
	in := Header{SrcIP: 0x0A123456, DstIP: 0x0B004567, SrcPort: 999, DstPort: 80, Proto: 6}
	if !tn.MatchesWords(in.Words()) {
		t.Errorf("header %v should match %v", in, tn)
	}
	cases := []Header{
		{SrcIP: 0x0B123456, DstIP: 0x0B004567, DstPort: 80, Proto: 6},  // wrong src prefix
		{SrcIP: 0x0A123456, DstIP: 0x0B104567, DstPort: 80, Proto: 6},  // wrong dst /16
		{SrcIP: 0x0A123456, DstIP: 0x0B004567, DstPort: 443, Proto: 6}, // wrong dst port
		{SrcIP: 0x0A123456, DstIP: 0x0B004567, DstPort: 80, Proto: 17}, // wrong proto
	}
	for i, h := range cases {
		if tn.MatchesWords(h.Words()) {
			t.Errorf("case %d: header %v should not match", i, h)
		}
	}
}

func TestFiveTupleWildcards(t *testing.T) {
	ft := FiveTuple{ProtoAny: true}
	if !ft.Ternary().IsFullWildcard() {
		t.Error("empty five-tuple with ProtoAny should be full wildcard")
	}
	ft2 := FiveTuple{} // proto exact 0
	if ft2.Ternary().ExactBits() != 8 {
		t.Errorf("proto-only ternary should have 8 exact bits, got %d", ft2.Ternary().ExactBits())
	}
}

func TestDstSrcPrefixTernary(t *testing.T) {
	d := DstPrefixTernary(0x0A000100, 24)
	h := Header{DstIP: 0x0A0001FE, SrcIP: 0xFFFFFFFF, SrcPort: 1, DstPort: 2, Proto: 3}
	if !d.MatchesWords(h.Words()) {
		t.Error("dst prefix should match")
	}
	h.DstIP = 0x0A000200
	if d.MatchesWords(h.Words()) {
		t.Error("dst prefix should not match different /24")
	}
	s := SrcPrefixTernary(0xC0A80000, 16)
	h2 := Header{SrcIP: 0xC0A81234}
	if !s.MatchesWords(h2.Words()) {
		t.Error("src prefix should match")
	}
}

func TestPrefixOverlapSemantics(t *testing.T) {
	// The paper's Fig. 5 example: src 10.0.0.0/16+dst 11.0.0.0/8 overlaps
	// src 10.0.0.0/8+dst 11.0.0.0/16.
	r1 := FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 16, DstIP: 0x0B000000, DstPfxLen: 8, ProtoAny: true}.Ternary()
	r2 := FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 8, DstIP: 0x0B000000, DstPfxLen: 16, ProtoAny: true}.Ternary()
	if !r1.Overlaps(r2) {
		t.Error("fig-5 rules must overlap")
	}
	if r1.Subsumes(r2) || r2.Subsumes(r1) {
		t.Error("neither fig-5 rule subsumes the other")
	}
	inter, ok := r1.Intersect(r2)
	if !ok {
		t.Fatal("intersection must be non-empty")
	}
	want := FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 16, DstIP: 0x0B000000, DstPfxLen: 16, ProtoAny: true}.Ternary()
	if !inter.Equal(want) {
		t.Errorf("intersection = %v, want %v", inter, want)
	}
}

func TestSampleHeaderMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ft := FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 12, DstIP: 0x0B000000, DstPfxLen: 20, Proto: 17}
	tn := ft.Ternary()
	for i := 0; i < 200; i++ {
		h := SampleHeader(tn, rng)
		if !tn.MatchesWords(h.Words()) {
			t.Fatalf("sampled header %v does not match its ternary", h)
		}
	}
}

func TestHeaderWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		h := Header{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(1 << 16)),
			DstPort: uint16(rng.Intn(1 << 16)),
			Proto:   uint8(rng.Intn(256)),
		}
		// A fully exact ternary built from the header must match it.
		tn := FiveTuple{
			SrcIP: h.SrcIP, SrcPfxLen: 32,
			DstIP: h.DstIP, DstPfxLen: 32,
			SrcPort: h.SrcPort, SrcExact: true,
			DstPort: h.DstPort, DstExact: true,
			Proto: h.Proto,
		}.Ternary()
		if !tn.MatchesWords(h.Words()) {
			t.Fatalf("exact ternary does not match its own header %v", h)
		}
		// And it matches exactly one header.
		if tn.CountMatching() != 1 {
			t.Fatalf("exact ternary matches %v headers", tn.CountMatching())
		}
	}
}

func TestHeaderString(t *testing.T) {
	h := Header{SrcIP: 0x0A000001, DstIP: 0x0B000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	want := "proto=6 10.0.0.1:1234 -> 11.0.0.2:80"
	if got := h.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
