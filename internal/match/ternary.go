// Package match implements ternary match fields over fixed-width packet
// headers, the matching primitive used by TCAM-based OpenFlow switches.
//
// A ternary match is an array of {0, 1, *} elements, where * (wildcard)
// matches both 0 and 1. The package provides the set operations the rule
// placement engine needs: overlap tests, intersection, subsumption, and
// residual subtraction, plus a concrete 5-tuple header layout.
package match

import (
	"fmt"
	"math/bits"
	"strings"
)

// wordBits is the number of bits carried per storage word.
const wordBits = 64

// Ternary is a ternary match field over a fixed number of header bits.
//
// Bit i is encoded across two bitmaps: care marks whether the position is
// exact (1) or wildcard (0), and value holds the required bit for exact
// positions. Value bits at wildcard positions are kept at zero so that
// equal ternaries are comparable word-by-word.
type Ternary struct {
	width int
	care  []uint64
	value []uint64
}

// NewTernary returns an all-wildcard ternary of the given width in bits.
// It panics if width is negative.
func NewTernary(width int) Ternary {
	if width < 0 {
		panic("match: negative ternary width")
	}
	nw := (width + wordBits - 1) / wordBits
	return Ternary{
		width: width,
		care:  make([]uint64, nw),
		value: make([]uint64, nw),
	}
}

// ParseTernary parses a string of '0', '1', '*' characters into a Ternary.
// The leftmost character is the most significant bit (bit width-1), matching
// the conventional written form of match patterns. Underscores and spaces
// are ignored so callers can group bits for readability.
func ParseTernary(s string) (Ternary, error) {
	cleaned := strings.Map(func(r rune) rune {
		if r == '_' || r == ' ' {
			return -1
		}
		return r
	}, s)
	t := NewTernary(len(cleaned))
	for i, r := range cleaned {
		bit := len(cleaned) - 1 - i
		switch r {
		case '*':
			// Wildcard: leave care and value at zero.
		case '0':
			t.setCare(bit, false)
		case '1':
			t.setCare(bit, true)
		default:
			return Ternary{}, fmt.Errorf("match: invalid ternary character %q at position %d", r, i)
		}
	}
	return t, nil
}

// MustParseTernary is ParseTernary that panics on error, for use in tests
// and static tables.
func MustParseTernary(s string) Ternary {
	t, err := ParseTernary(s)
	if err != nil {
		panic(err)
	}
	return t
}

// setCare marks bit as exact with the given value.
func (t *Ternary) setCare(bit int, one bool) {
	w, off := bit/wordBits, uint(bit%wordBits)
	t.care[w] |= 1 << off
	if one {
		t.value[w] |= 1 << off
	}
}

// Width returns the number of header bits this ternary matches against.
func (t Ternary) Width() int { return t.width }

// Clone returns an independent copy of t.
func (t Ternary) Clone() Ternary {
	c := Ternary{width: t.width, care: make([]uint64, len(t.care)), value: make([]uint64, len(t.value))}
	copy(c.care, t.care)
	copy(c.value, t.value)
	return c
}

// SetBit returns a copy of t with the given bit set to an exact 0 or 1.
// It panics if bit is out of range.
func (t Ternary) SetBit(bit int, one bool) Ternary {
	t.mustContainBit(bit)
	c := t.Clone()
	w, off := bit/wordBits, uint(bit%wordBits)
	c.care[w] |= 1 << off
	if one {
		c.value[w] |= 1 << off
	} else {
		c.value[w] &^= 1 << off
	}
	return c
}

// SetWildcard returns a copy of t with the given bit reset to wildcard.
func (t Ternary) SetWildcard(bit int) Ternary {
	t.mustContainBit(bit)
	c := t.Clone()
	w, off := bit/wordBits, uint(bit%wordBits)
	c.care[w] &^= 1 << off
	c.value[w] &^= 1 << off
	return c
}

// SetField returns a copy of t with bits [lo, lo+n) set to the low n bits
// of v, most significant bit of the field at lo+n-1.
func (t Ternary) SetField(lo, n int, v uint64) Ternary {
	c := t.Clone()
	for i := 0; i < n; i++ {
		w, off := (lo+i)/wordBits, uint((lo+i)%wordBits)
		c.care[w] |= 1 << off
		if v>>uint(i)&1 == 1 {
			c.value[w] |= 1 << off
		} else {
			c.value[w] &^= 1 << off
		}
	}
	return c
}

// SetPrefix returns a copy of t whose field bits [lo, lo+n) match the
// plen most significant bits of the n-bit value v, with the remaining
// low-order bits wildcarded. This expresses an IP-prefix style match.
func (t Ternary) SetPrefix(lo, n int, v uint64, plen int) Ternary {
	if plen < 0 || plen > n {
		panic(fmt.Sprintf("match: prefix length %d out of range for %d-bit field", plen, n))
	}
	c := t.Clone()
	for i := 0; i < n; i++ {
		w, off := (lo+i)/wordBits, uint((lo+i)%wordBits)
		if i < n-plen {
			c.care[w] &^= 1 << off
			c.value[w] &^= 1 << off
			continue
		}
		c.care[w] |= 1 << off
		if v>>uint(i)&1 == 1 {
			c.value[w] |= 1 << off
		} else {
			c.value[w] &^= 1 << off
		}
	}
	return c
}

// Bit reports the state of a single bit: exact (care=true) with its value,
// or wildcard (care=false).
func (t Ternary) Bit(bit int) (care, one bool) {
	t.mustContainBit(bit)
	w, off := bit/wordBits, uint(bit%wordBits)
	return t.care[w]>>off&1 == 1, t.value[w]>>off&1 == 1
}

func (t Ternary) mustContainBit(bit int) {
	if bit < 0 || bit >= t.width {
		panic(fmt.Sprintf("match: bit %d out of range for width %d", bit, t.width))
	}
}

// ExactBits returns the number of non-wildcard bit positions.
func (t Ternary) ExactBits() int {
	n := 0
	for _, w := range t.care {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsFullWildcard reports whether every bit of t is a wildcard.
func (t Ternary) IsFullWildcard() bool {
	for _, w := range t.care {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a and b match exactly the same set of headers.
func (t Ternary) Equal(o Ternary) bool {
	if t.width != o.width {
		return false
	}
	for i := range t.care {
		if t.care[i] != o.care[i] || t.value[i] != o.value[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key identifying the exact
// match set of t. Unlike String it is O(words), not O(bits).
func (t Ternary) Key() string {
	var sb strings.Builder
	sb.Grow(len(t.care)*34 + 8)
	fmt.Fprintf(&sb, "%d:", t.width)
	for i := range t.care {
		fmt.Fprintf(&sb, "%x.%x;", t.care[i], t.value[i])
	}
	return sb.String()
}

// Overlaps reports whether some header matches both t and o, i.e. whether
// their match sets intersect. Ternaries of different widths never overlap.
func (t Ternary) Overlaps(o Ternary) bool {
	if t.width != o.width {
		return false
	}
	for i := range t.care {
		if (t.value[i]^o.value[i])&(t.care[i]&o.care[i]) != 0 {
			return false
		}
	}
	return true
}

// Intersect returns the ternary matching exactly the headers matched by
// both t and o. ok is false when the intersection is empty.
func (t Ternary) Intersect(o Ternary) (res Ternary, ok bool) {
	if t.width != o.width || !t.Overlaps(o) {
		return Ternary{}, false
	}
	res = NewTernary(t.width)
	for i := range t.care {
		res.care[i] = t.care[i] | o.care[i]
		res.value[i] = (t.value[i] & t.care[i]) | (o.value[i] & o.care[i])
	}
	return res, true
}

// Subsumes reports whether t's match set is a superset of o's
// (every header matching o also matches t).
func (t Ternary) Subsumes(o Ternary) bool {
	if t.width != o.width {
		return false
	}
	for i := range t.care {
		// Every exact bit of t must be exact in o with the same value.
		if t.care[i]&^o.care[i] != 0 {
			return false
		}
		if (t.value[i]^o.value[i])&t.care[i] != 0 {
			return false
		}
	}
	return true
}

// MatchesWords reports whether the header given as packed words matches t.
// The slice must contain at least as many words as t's storage.
func (t Ternary) MatchesWords(header []uint64) bool {
	for i := range t.care {
		var h uint64
		if i < len(header) {
			h = header[i]
		}
		if (h^t.value[i])&t.care[i] != 0 {
			return false
		}
	}
	return true
}

// Subtract returns a set of disjoint ternaries covering exactly the headers
// that match t but not o. The result has at most Width entries. If t and o
// do not overlap the result is {t}; if o subsumes t the result is empty.
func (t Ternary) Subtract(o Ternary) []Ternary {
	if !t.Overlaps(o) {
		return []Ternary{t}
	}
	var out []Ternary
	cur := t.Clone()
	for bit := 0; bit < t.width; bit++ {
		oCare, oOne := o.Bit(bit)
		if !oCare {
			continue
		}
		tCare, tOne := cur.Bit(bit)
		if tCare {
			if tOne != oOne {
				// cur already avoids o on this bit; cur ∩ o = ∅ from here.
				out = append(out, cur)
				return out
			}
			continue
		}
		// cur is wildcard at an exact bit of o: split off the half that
		// differs from o (it cannot match o), keep narrowing the rest.
		out = append(out, cur.SetBit(bit, !oOne))
		cur = cur.SetBit(bit, oOne)
	}
	// cur is now subsumed by o; drop it.
	return out
}

// String renders t as a {0,1,*} pattern, most significant bit first.
func (t Ternary) String() string {
	b := make([]byte, t.width)
	for bit := 0; bit < t.width; bit++ {
		care, one := t.Bit(bit)
		c := byte('*')
		if care {
			if one {
				c = '1'
			} else {
				c = '0'
			}
		}
		b[t.width-1-bit] = c
	}
	return string(b)
}

// CountMatching returns the number of distinct headers matched by t as a
// float64 (2^wildcards), saturating for very wide matches.
func (t Ternary) CountMatching() float64 {
	wild := t.width - t.ExactBits()
	if wild >= 1024 {
		return 1e308
	}
	out := 1.0
	for i := 0; i < wild; i++ {
		out *= 2
	}
	return out
}
