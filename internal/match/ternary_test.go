package match

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTernaryRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "*", "01*", "1111", "0000", "*0*1*0*1", "10*01*11*000"}
	for _, s := range cases {
		tn, err := ParseTernary(s)
		if err != nil {
			t.Fatalf("ParseTernary(%q): %v", s, err)
		}
		if got := tn.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if tn.Width() != len(s) {
			t.Errorf("width of %q = %d, want %d", s, tn.Width(), len(s))
		}
	}
}

func TestParseTernaryIgnoresSeparators(t *testing.T) {
	a := MustParseTernary("10_1* 01")
	b := MustParseTernary("101*01")
	if !a.Equal(b) {
		t.Errorf("separator-insensitive parse failed: %v vs %v", a, b)
	}
}

func TestParseTernaryRejectsInvalid(t *testing.T) {
	if _, err := ParseTernary("01x"); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"1", "1", true},
		{"1", "0", false},
		{"*", "0", true},
		{"*", "1", true},
		{"10*", "1*0", true},  // intersection 100
		{"10*", "01*", false}, // disagree on top bits
		{"****", "1111", true},
		{"110*", "111*", false},
	}
	for _, c := range cases {
		a, b := MustParseTernary(c.a), MustParseTernary(c.b)
		if got := a.Overlaps(b); got != c.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestOverlapsWidthMismatch(t *testing.T) {
	a, b := MustParseTernary("1*"), MustParseTernary("1")
	if a.Overlaps(b) {
		t.Error("ternaries of different widths must not overlap")
	}
}

func TestIntersect(t *testing.T) {
	a := MustParseTernary("10**")
	b := MustParseTernary("1**1")
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected non-empty intersection")
	}
	want := MustParseTernary("10*1")
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if _, ok := MustParseTernary("11").Intersect(MustParseTernary("00")); ok {
		t.Error("expected empty intersection")
	}
}

func TestSubsumes(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"***", "101", true},
		{"1**", "101", true},
		{"101", "101", true},
		{"101", "1**", false},
		{"1*1", "111", true},
		{"1*1", "110", false},
		{"0**", "1**", false},
	}
	for _, c := range cases {
		a, b := MustParseTernary(c.a), MustParseTernary(c.b)
		if got := a.Subsumes(b); got != c.want {
			t.Errorf("Subsumes(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSetBitAndWildcard(t *testing.T) {
	tn := NewTernary(4)
	tn = tn.SetBit(0, true).SetBit(3, false)
	if got := tn.String(); got != "0**1" {
		t.Errorf("got %q, want 0**1", got)
	}
	tn = tn.SetWildcard(0)
	if got := tn.String(); got != "0***" {
		t.Errorf("got %q, want 0***", got)
	}
}

func TestSetFieldAndPrefix(t *testing.T) {
	tn := NewTernary(16).SetField(0, 8, 0xA5)
	for i := 0; i < 8; i++ {
		care, one := tn.Bit(i)
		if !care || one != (0xA5>>uint(i)&1 == 1) {
			t.Fatalf("bit %d wrong: care=%v one=%v", i, care, one)
		}
	}
	// 8-bit field, /4 prefix on value 0b1011_0000: top 4 bits exact.
	tn = NewTernary(8).SetPrefix(0, 8, 0xB0, 4)
	if got := tn.String(); got != "1011****" {
		t.Errorf("prefix ternary = %q, want 1011****", got)
	}
	// Zero-length prefix = full wildcard field.
	tn = NewTernary(8).SetPrefix(0, 8, 0xFF, 0)
	if !tn.IsFullWildcard() {
		t.Errorf("zero-length prefix should wildcard field, got %q", tn)
	}
}

func TestSubtract(t *testing.T) {
	a := MustParseTernary("1***")
	b := MustParseTernary("1*01")
	parts := a.Subtract(b)
	// Parts must be disjoint from b, disjoint from each other, and
	// together with a∩b cover a.
	for i, p := range parts {
		if p.Overlaps(b) {
			t.Errorf("part %d (%v) overlaps subtrahend %v", i, p, b)
		}
		if !a.Subsumes(p) {
			t.Errorf("part %d (%v) not within %v", i, p, a)
		}
		for j := i + 1; j < len(parts); j++ {
			if p.Overlaps(parts[j]) {
				t.Errorf("parts %d and %d overlap: %v, %v", i, j, p, parts[j])
			}
		}
	}
	var n float64
	for _, p := range parts {
		n += p.CountMatching()
	}
	inter, _ := a.Intersect(b)
	if n+inter.CountMatching() != a.CountMatching() {
		t.Errorf("subtraction loses headers: parts=%v inter=%v total=%v", n, inter.CountMatching(), a.CountMatching())
	}
}

func TestSubtractDisjointAndSubsumed(t *testing.T) {
	a := MustParseTernary("11**")
	if parts := a.Subtract(MustParseTernary("00**")); len(parts) != 1 || !parts[0].Equal(a) {
		t.Errorf("disjoint subtract should return original, got %v", parts)
	}
	if parts := a.Subtract(MustParseTernary("****")); len(parts) != 0 {
		t.Errorf("subsumed subtract should be empty, got %v", parts)
	}
}

func TestMatchesWords(t *testing.T) {
	tn := MustParseTernary("1*0")
	if !tn.MatchesWords([]uint64{0b100}) || !tn.MatchesWords([]uint64{0b110}) {
		t.Error("expected matches for 100 and 110")
	}
	if tn.MatchesWords([]uint64{0b101}) || tn.MatchesWords([]uint64{0b000}) {
		t.Error("unexpected matches for 101 / 000")
	}
}

func TestWideTernary(t *testing.T) {
	// Exercise multi-word storage (width > 64).
	tn := NewTernary(100).SetBit(0, true).SetBit(99, false).SetBit(64, true)
	care, one := tn.Bit(99)
	if !care || one {
		t.Error("bit 99 should be exact 0")
	}
	care, one = tn.Bit(64)
	if !care || !one {
		t.Error("bit 64 should be exact 1")
	}
	if tn.ExactBits() != 3 {
		t.Errorf("ExactBits = %d, want 3", tn.ExactBits())
	}
	o := NewTernary(100).SetBit(64, false)
	if tn.Overlaps(o) {
		t.Error("should conflict on bit 64")
	}
}

func TestCountMatching(t *testing.T) {
	if got := MustParseTernary("1*0*").CountMatching(); got != 4 {
		t.Errorf("CountMatching = %v, want 4", got)
	}
	if got := MustParseTernary("11").CountMatching(); got != 1 {
		t.Errorf("CountMatching = %v, want 1", got)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := MustParseTernary("1*0")
	b := MustParseTernary("1*1")
	c := MustParseTernary("1**")
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true}
	if len(keys) != 3 {
		t.Errorf("keys collide: %v %v %v", a.Key(), b.Key(), c.Key())
	}
	if a.Key() != a.Clone().Key() {
		t.Error("Key not stable across clone")
	}
}

// randomTernary builds a random ternary of the given width for property tests.
func randomTernary(width int, rng *rand.Rand) Ternary {
	t := NewTernary(width)
	for b := 0; b < width; b++ {
		switch rng.Intn(3) {
		case 0:
			t = t.SetBit(b, false)
		case 1:
			t = t.SetBit(b, true)
		}
	}
	return t
}

func TestPropertyOverlapIffSharedHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width = 10
	for iter := 0; iter < 500; iter++ {
		a, b := randomTernary(width, rng), randomTernary(width, rng)
		shared := false
		for h := uint64(0); h < 1<<width; h++ {
			if a.MatchesWords([]uint64{h}) && b.MatchesWords([]uint64{h}) {
				shared = true
				break
			}
		}
		if got := a.Overlaps(b); got != shared {
			t.Fatalf("Overlaps(%v, %v) = %v, exhaustive says %v", a, b, got, shared)
		}
	}
}

func TestPropertyIntersectExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width = 9
	for iter := 0; iter < 300; iter++ {
		a, b := randomTernary(width, rng), randomTernary(width, rng)
		inter, ok := a.Intersect(b)
		for h := uint64(0); h < 1<<width; h++ {
			both := a.MatchesWords([]uint64{h}) && b.MatchesWords([]uint64{h})
			var ib bool
			if ok {
				ib = inter.MatchesWords([]uint64{h})
			}
			if both != ib {
				t.Fatalf("intersect mismatch at header %b: a=%v b=%v inter=%v", h, a, b, inter)
			}
		}
	}
}

func TestPropertySubsumesViaQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		a := randomTernary(8, r)
		b := randomTernary(8, r)
		want := true
		for h := uint64(0); h < 1<<8; h++ {
			if b.MatchesWords([]uint64{h}) && !a.MatchesWords([]uint64{h}) {
				want = false
				break
			}
		}
		return a.Subsumes(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtractPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const width = 9
	for iter := 0; iter < 200; iter++ {
		a, b := randomTernary(width, rng), randomTernary(width, rng)
		parts := a.Subtract(b)
		for h := uint64(0); h < 1<<width; h++ {
			want := a.MatchesWords([]uint64{h}) && !b.MatchesWords([]uint64{h})
			got := 0
			for _, p := range parts {
				if p.MatchesWords([]uint64{h}) {
					got++
				}
			}
			if want && got != 1 {
				t.Fatalf("header %b should be in exactly one part, in %d (a=%v b=%v)", h, got, a, b)
			}
			if !want && got != 0 {
				t.Fatalf("header %b should be in no part, in %d (a=%v b=%v)", h, got, a, b)
			}
		}
	}
}

func TestPropertySampleWordsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 300; iter++ {
		tn := randomTernary(20, rng)
		w := SampleWords(tn, rng)
		if !tn.MatchesWords(w) {
			t.Fatalf("sampled words %v do not match %v", w, tn)
		}
	}
}

func TestStringWidth(t *testing.T) {
	tn := NewTernary(5)
	if got := tn.String(); got != strings.Repeat("*", 5) {
		t.Errorf("String of wildcard = %q", got)
	}
}
