package match

import (
	"strings"
	"testing"
)

// Deterministic edge-case battery for the ternary set algebra. The fuzz
// target (FuzzTernaryOverlap) explores this space probabilistically;
// these tests pin the corners we know are dangerous — word boundaries
// in the two-bitmap encoding, zero-care masks, zero-width values, and
// adjacent-but-disjoint ranges — so a regression fails by name.

// TestZeroWidthTernary: the empty ternary is a valid value that matches
// the empty header and relates to itself in the usual reflexive ways.
func TestZeroWidthTernary(t *testing.T) {
	z := MustParseTernary("")
	if z.Width() != 0 {
		t.Fatalf("Width() = %d, want 0", z.Width())
	}
	if !z.Overlaps(z) || !z.Subsumes(z) {
		t.Fatal("zero-width ternary must overlap and subsume itself")
	}
	if inter, ok := z.Intersect(z); !ok || !inter.Equal(z) {
		t.Fatal("zero-width self-intersection must be identity")
	}
	if rem := z.Subtract(z); len(rem) != 0 {
		t.Fatalf("zero-width self-subtraction left %d pieces", len(rem))
	}
	if !z.MatchesWords(nil) {
		t.Fatal("zero-width ternary must match the empty header")
	}
	if !z.IsFullWildcard() {
		t.Fatal("zero-width ternary is vacuously a full wildcard")
	}
	if z.String() != "" {
		t.Fatalf("String() = %q, want empty", z.String())
	}
}

// TestZeroCareMask: a mask with zero care bits (all wildcards) behaves
// as the universe at its width: it overlaps and subsumes everything of
// that width, and subtracting it leaves nothing.
func TestZeroCareMask(t *testing.T) {
	for _, w := range []int{1, 63, 64, 65, 104, 128} {
		univ := NewTernary(w)
		if !univ.IsFullWildcard() {
			t.Fatalf("w=%d: NewTernary is not a full wildcard", w)
		}
		if univ.ExactBits() != 0 {
			t.Fatalf("w=%d: ExactBits = %d, want 0", w, univ.ExactBits())
		}
		// An arbitrary exact value of the same width.
		val := univ
		for i := 0; i < w; i++ {
			val = val.SetBit(i, i%3 == 0)
		}
		if !univ.Subsumes(val) || !univ.Overlaps(val) {
			t.Fatalf("w=%d: universe does not subsume/overlap an exact value", w)
		}
		if val.Subsumes(univ) && w > 0 {
			t.Fatalf("w=%d: exact value claims to subsume the universe", w)
		}
		if rem := val.Subtract(univ); len(rem) != 0 {
			t.Fatalf("w=%d: subtracting the universe left %d pieces", w, len(rem))
		}
		if inter, ok := univ.Intersect(val); !ok || !inter.Equal(val) {
			t.Fatalf("w=%d: universe ∩ value != value", w)
		}
	}
}

// TestWordBoundaryBits exercises bits 63, 64, and 65 — the seam between
// the first and second uint64 words of the care/value bitmaps, where an
// off-by-one in word indexing or masking of the partial top word would
// conflate neighbouring bits.
func TestWordBoundaryBits(t *testing.T) {
	for _, w := range []int{64, 65, 66, 128, 129} {
		for bit := 62; bit <= 66 && bit < w; bit++ {
			a := NewTernary(w).SetBit(bit, true)
			b := NewTernary(w).SetBit(bit, false)
			if a.Overlaps(b) {
				t.Errorf("w=%d bit=%d: 1 vs 0 at the same bit overlap", w, bit)
			}
			if _, ok := a.Intersect(b); ok {
				t.Errorf("w=%d bit=%d: disjoint ternaries intersect", w, bit)
			}
			// Differing bits: still overlap (both wildcard elsewhere).
			if bit+1 < w {
				c := NewTernary(w).SetBit(bit+1, true)
				if !a.Overlaps(c) {
					t.Errorf("w=%d: exact bits at %d and %d must overlap", w, bit, bit+1)
				}
			}
			// Bit readback across the seam.
			if care, one := a.Bit(bit); !care || !one {
				t.Errorf("w=%d bit=%d: Bit() = (%v,%v), want (true,true)", w, bit, care, one)
			}
			// Clearing back to wildcard restores the universe.
			if !a.SetWildcard(bit).IsFullWildcard() {
				t.Errorf("w=%d bit=%d: SetWildcard did not restore full wildcard", w, bit)
			}
			// Subtracting the 0-branch from the universe leaves exactly
			// the 1-branch at that bit.
			rem := NewTernary(w).Subtract(b)
			if len(rem) != 1 || !rem[0].Equal(a) {
				t.Errorf("w=%d bit=%d: universe minus 0-branch = %v, want the 1-branch", w, bit, rem)
			}
		}
	}
}

// TestPartialTopWordIsMasked: a ternary whose width is not a multiple
// of 64 must ignore junk beyond the top bit — two ternaries equal on
// the declared bits are Equal and share a Key regardless of how they
// were built.
func TestPartialTopWordIsMasked(t *testing.T) {
	const w = 65
	a := NewTernary(w).SetBit(64, true)
	b := MustParseTernary("1" + strings.Repeat("*", 64)) // String is MSB-first: bit 64 is first
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatalf("equal 65-bit ternaries differ: %q vs %q", a.String(), b.String())
	}
	if got := a.String(); len(got) != w {
		t.Fatalf("String length %d, want %d", len(got), w)
	}
}

// TestAdjacentDisjointRanges: values and prefixes that touch but do not
// overlap. 2^63-1 and 2^63 differ in every bit of a 64-bit field; the
// two halves 0* and 1* partition the space. Neither pair may overlap,
// and their union must cover the universe exactly.
func TestAdjacentDisjointRanges(t *testing.T) {
	const w = 64
	lo := NewTernary(w).SetField(0, w, 1<<63-1)
	hi := NewTernary(w).SetField(0, w, 1<<63)
	if lo.Overlaps(hi) || hi.Overlaps(lo) {
		t.Fatal("adjacent exact values overlap")
	}
	if lo.Subsumes(hi) || hi.Subsumes(lo) {
		t.Fatal("adjacent exact values subsume each other")
	}

	half0 := NewTernary(4).SetBit(3, false) // 0***
	half1 := NewTernary(4).SetBit(3, true)  // 1***
	if half0.Overlaps(half1) {
		t.Fatal("prefix halves 0*** and 1*** overlap")
	}
	// Their union is the universe: universe minus one half is the other.
	rem := NewTernary(4).Subtract(half0)
	if len(rem) != 1 || !rem[0].Equal(half1) {
		t.Fatalf("universe minus 0*** = %v, want [1***]", rem)
	}
}

// TestSetFieldBoundaries: SetField across the word seam and at the full
// width writes exactly the named bits, readable via MatchesWords.
func TestSetFieldBoundaries(t *testing.T) {
	// 8-bit field straddling bits 60..67 of a 128-bit header.
	v := NewTernary(128).SetField(60, 8, 0xA5)
	// 0xA5 at bit 60: low nibble 0x5 in word 0, high nibble 0xA in word 1.
	hdr := []uint64{uint64(0x5) << 60, 0xA}
	if !v.MatchesWords(hdr) {
		t.Fatal("field straddling the word seam does not match its own value")
	}
	if v.ExactBits() != 8 {
		t.Fatalf("ExactBits = %d, want 8", v.ExactBits())
	}
	wrong := []uint64{uint64(0x4) << 60, 0xA}
	if v.MatchesWords(wrong) {
		t.Fatal("matched a header with a flipped bit inside the field")
	}

	// Full-width field: all 64 bits exact.
	full := NewTernary(64).SetField(0, 64, 0xDEADBEEFCAFE)
	if full.ExactBits() != 64 {
		t.Fatalf("ExactBits = %d, want 64", full.ExactBits())
	}
	if !full.MatchesWords([]uint64{0xDEADBEEFCAFE}) {
		t.Fatal("full-width field does not match its value")
	}
}

// TestSetPrefixDegenerate: plen 0 leaves the field fully wildcarded;
// plen n pins every bit. Between the two, only the top plen bits care.
func TestSetPrefixDegenerate(t *testing.T) {
	base := NewTernary(32)
	if got := base.SetPrefix(0, 32, 0xC0A80000, 0); !got.IsFullWildcard() {
		t.Fatal("plen 0 must leave the field a full wildcard")
	}
	exact := base.SetPrefix(0, 32, 0xC0A80001, 32)
	if exact.ExactBits() != 32 {
		t.Fatalf("plen 32: ExactBits = %d, want 32", exact.ExactBits())
	}
	if !exact.MatchesWords([]uint64{0xC0A80001}) {
		t.Fatal("plen 32 prefix does not match its own address")
	}
	p24 := base.SetPrefix(0, 32, 0xC0A80100, 24)
	if p24.ExactBits() != 24 {
		t.Fatalf("plen 24: ExactBits = %d, want 24", p24.ExactBits())
	}
	if !p24.MatchesWords([]uint64{0xC0A80142}) {
		t.Fatal("/24 prefix rejects an address inside it")
	}
	if p24.MatchesWords([]uint64{0xC0A80242}) {
		t.Fatal("/24 prefix accepts an address outside it")
	}
	if !p24.Subsumes(base.SetPrefix(0, 32, 0xC0A80142, 32)) {
		t.Fatal("/24 must subsume a /32 inside it")
	}
}

// TestSelfOverlapAfterMutation: a ternary derived by SetBit/SetWildcard
// chains stays internally consistent — Clone-equality, self-overlap,
// and value bits at wildcard positions normalized to zero (so Equal and
// Key work word-by-word).
func TestSelfOverlapAfterMutation(t *testing.T) {
	v := NewTernary(70)
	for i := 0; i < 70; i += 7 {
		v = v.SetBit(i, true)
	}
	// Wildcard a previously-set bit: the stored value bit must reset.
	v2 := v.SetWildcard(63)
	want := NewTernary(70)
	for i := 0; i < 70; i += 7 {
		if i != 63 {
			want = want.SetBit(i, true)
		}
	}
	if !v2.Equal(want) || v2.Key() != want.Key() {
		t.Fatal("SetWildcard left a stale value bit behind")
	}
	if !v2.Overlaps(v) || !v2.Subsumes(v) {
		t.Fatal("widened ternary must overlap and subsume the original")
	}
	if !v.Clone().Equal(v) {
		t.Fatal("Clone is not Equal to the original")
	}
}

// TestFiveTupleWildcardCorners: fully-wildcard and fully-exact 5-tuples
// land at the documented extremes of the 104-bit header layout.
func TestFiveTupleWildcardCorners(t *testing.T) {
	anyT := FiveTuple{ProtoAny: true}.Ternary()
	if anyT.Width() != HeaderWidth || !anyT.IsFullWildcard() {
		t.Fatalf("all-wildcard FiveTuple: width=%d wildcard=%v", anyT.Width(), anyT.IsFullWildcard())
	}
	// The zero FiveTuple is NOT fully wildcard: ProtoAny=false pins
	// proto to 0 — an easy trap the encoder must not fall into.
	if (FiveTuple{}).Ternary().IsFullWildcard() {
		t.Fatal("zero FiveTuple should pin proto=0, not wildcard it")
	}
	exact := FiveTuple{
		SrcIP: 0x0A000001, SrcPfxLen: 32,
		DstIP: 0x0A000002, DstPfxLen: 32,
		SrcPort: 1234, SrcExact: true,
		DstPort: 80, DstExact: true,
		Proto: 6,
	}.Ternary()
	if exact.ExactBits() != HeaderWidth {
		t.Fatalf("fully-pinned FiveTuple: ExactBits=%d, want %d", exact.ExactBits(), HeaderWidth)
	}
	if !anyT.Subsumes(exact) || exact.Subsumes(anyT) {
		t.Fatal("wildcard 5-tuple must strictly subsume the exact one")
	}
}
