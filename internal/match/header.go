package match

import (
	"fmt"
	"math/rand"
)

// The classic 5-tuple header layout used by the firewall experiments.
// Field bit offsets within the 104-bit header, low bit first.
const (
	// HeaderWidth is the total width of the 5-tuple header in bits.
	HeaderWidth = 104

	protoLo   = 0
	protoBits = 8

	dstPortLo   = 8
	dstPortBits = 16

	srcPortLo   = 24
	srcPortBits = 16

	dstIPLo   = 40
	dstIPBits = 32

	srcIPLo   = 72
	srcIPBits = 32
)

// Header is a concrete 5-tuple packet header.
type Header struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Words packs the header into the word layout expected by
// Ternary.MatchesWords for HeaderWidth-bit ternaries.
func (h Header) Words() []uint64 {
	w := make([]uint64, 2)
	put := func(lo, n int, v uint64) {
		for i := 0; i < n; i++ {
			if v>>uint(i)&1 == 1 {
				w[(lo+i)/wordBits] |= 1 << uint((lo+i)%wordBits)
			}
		}
	}
	put(protoLo, protoBits, uint64(h.Proto))
	put(dstPortLo, dstPortBits, uint64(h.DstPort))
	put(srcPortLo, srcPortBits, uint64(h.SrcPort))
	put(dstIPLo, dstIPBits, uint64(h.DstIP))
	put(srcIPLo, srcIPBits, uint64(h.SrcIP))
	return w
}

// String renders the header in a human-readable form.
func (h Header) String() string {
	return fmt.Sprintf("proto=%d %s:%d -> %s:%d", h.Proto, ipString(h.SrcIP), h.SrcPort, ipString(h.DstIP), h.DstPort)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24&0xff, ip>>16&0xff, ip>>8&0xff, ip&0xff)
}

// FiveTuple builds a HeaderWidth-bit ternary from prefix-style field
// constraints. Prefix lengths of 0 wildcard the whole field.
type FiveTuple struct {
	SrcIP     uint32
	SrcPfxLen int // 0..32
	DstIP     uint32
	DstPfxLen int // 0..32
	SrcPort   uint16
	SrcExact  bool // false: wildcard src port
	DstPort   uint16
	DstExact  bool // false: wildcard dst port
	Proto     uint8
	ProtoAny  bool // true: wildcard protocol
}

// Ternary converts the 5-tuple constraint into a ternary match.
func (f FiveTuple) Ternary() Ternary {
	t := NewTernary(HeaderWidth)
	t = t.SetPrefix(srcIPLo, srcIPBits, uint64(f.SrcIP), f.SrcPfxLen)
	t = t.SetPrefix(dstIPLo, dstIPBits, uint64(f.DstIP), f.DstPfxLen)
	if f.SrcExact {
		t = t.SetField(srcPortLo, srcPortBits, uint64(f.SrcPort))
	}
	if f.DstExact {
		t = t.SetField(dstPortLo, dstPortBits, uint64(f.DstPort))
	}
	if !f.ProtoAny {
		t = t.SetField(protoLo, protoBits, uint64(f.Proto))
	}
	return t
}

// DstPrefixTernary builds a ternary constraining only the destination IP
// to the given prefix; used for per-path traffic slices.
func DstPrefixTernary(dstIP uint32, plen int) Ternary {
	return NewTernary(HeaderWidth).SetPrefix(dstIPLo, dstIPBits, uint64(dstIP), plen)
}

// SrcPrefixTernary builds a ternary constraining only the source IP.
func SrcPrefixTernary(srcIP uint32, plen int) Ternary {
	return NewTernary(HeaderWidth).SetPrefix(srcIPLo, srcIPBits, uint64(srcIP), plen)
}

// SampleHeader draws a uniformly random header matching t, which must be a
// HeaderWidth-bit ternary. Wildcard bits are drawn from rng.
func SampleHeader(t Ternary, rng *rand.Rand) Header {
	if t.Width() != HeaderWidth {
		panic(fmt.Sprintf("match: SampleHeader wants %d-bit ternary, got %d", HeaderWidth, t.Width()))
	}
	words := make([]uint64, len(t.value))
	for i := range words {
		words[i] = (t.value[i] & t.care[i]) | (rng.Uint64() &^ t.care[i])
	}
	get := func(lo, n int) uint64 {
		var v uint64
		for i := 0; i < n; i++ {
			if words[(lo+i)/wordBits]>>uint((lo+i)%wordBits)&1 == 1 {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	return Header{
		SrcIP:   uint32(get(srcIPLo, srcIPBits)),
		DstIP:   uint32(get(dstIPLo, dstIPBits)),
		SrcPort: uint16(get(srcPortLo, srcPortBits)),
		DstPort: uint16(get(dstPortLo, dstPortBits)),
		Proto:   uint8(get(protoLo, protoBits)),
	}
}

// SampleWords draws random packed header words matching a ternary of any
// width. Useful for property tests over narrow synthetic headers.
func SampleWords(t Ternary, rng *rand.Rand) []uint64 {
	words := make([]uint64, len(t.value))
	for i := range words {
		words[i] = (t.value[i] & t.care[i]) | (rng.Uint64() &^ t.care[i])
	}
	if t.width%wordBits != 0 && len(words) > 0 {
		// Zero bits above the declared width for stable comparisons.
		words[len(words)-1] &= (1 << uint(t.width%wordBits)) - 1
	}
	return words
}
