package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rulefit/internal/obs"
	"rulefit/internal/obs/traceview"
)

// TestSecRingBackwardClock pins the clamp: adds and reads for seconds
// behind the ring's frontier land at the frontier instead of resurrecting
// (or pre-polluting) slots. Sleep-free — seconds are explicit.
func TestSecRingBackwardClock(t *testing.T) {
	r := newSecRing(300)
	base := int64(2_000_000)
	r.addAt(base, 1)
	r.addAt(base-50, 2) // clock went backwards: counts at the frontier
	if got := r.sumAt(base, 60); got != 3 {
		t.Fatalf("sum at frontier = %d, want 3 (backward add clamped in)", got)
	}
	// A backward read must not advance-and-zero future slots either.
	if got := r.sumAt(base-120, 60); got != 3 {
		t.Fatalf("backward read = %d, want 3 (read clamped to frontier)", got)
	}
	if r.lastSec != base {
		t.Fatalf("frontier moved backwards to %d", r.lastSec)
	}
}

// serveJSON drives one request through the server's handler
// synchronously (no network, no goroutines — the injected clock can be
// swapped between calls without races).
func serveJSON(t *testing.T, s *Server, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec.Code, rec.Body.Bytes()
}

// TestStatuszClockInjection drives the /statusz rate windows with an
// injected clock — no sleeps: one request lands in the 1m/5m windows,
// then a 400-second jump of the fake clock expires the 1m window (and
// keeps the 5m one) without any wall time passing.
func TestStatuszClockInjection(t *testing.T) {
	s := New(Config{MaxInFlight: 1, Logger: quietLogger(), Metrics: &obs.Metrics{}})
	s.ready.Store(true)
	fake := time.Unix(3_000_000, 0)
	s.now = func() time.Time { return fake }

	body, err := json.Marshal(PlaceRequest{
		Problem: testSpec(t, 4),
		Options: RequestOptions{Merging: true, TimeLimitSec: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, resp := serveJSON(t, s, http.MethodPost, "/v1/place", body); code != http.StatusOK {
		t.Fatalf("place status %d: %s", code, resp)
	}

	status := func() StatusSnapshot {
		code, resp := serveJSON(t, s, http.MethodGet, "/statusz", nil)
		if code != http.StatusOK {
			t.Fatalf("statusz status %d", code)
		}
		var snap StatusSnapshot
		if err := json.Unmarshal(resp, &snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	if snap := status(); snap.Requests1m != 1 || snap.Requests5m != 1 {
		t.Fatalf("windows before jump = %d/%d, want 1/1", snap.Requests1m, snap.Requests5m)
	}
	fake = fake.Add(100 * time.Second) // past 1m, inside 5m
	if snap := status(); snap.Requests1m != 0 || snap.Requests5m != 1 {
		t.Fatalf("windows after 100s jump = %d/%d, want 0/1", snap.Requests1m, snap.Requests5m)
	}
	fake = fake.Add(300 * time.Second) // past 5m too
	if snap := status(); snap.Requests5m != 0 {
		t.Fatalf("5m window after 400s = %d, want 0 (stale ring not zeroed on read)", snap.Requests5m)
	}
}

// TestSolvezIdle: the endpoint answers an empty-but-well-formed body
// when no solve is in flight.
func TestSolvezIdle(t *testing.T) {
	s := New(Config{MaxInFlight: 1, Logger: quietLogger(), Metrics: &obs.Metrics{}})
	code, body := serveJSON(t, s, http.MethodGet, "/debug/solvez", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp solvezResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 0 || resp.Active == nil || len(resp.Active) != 0 {
		t.Fatalf("idle solvez = %+v, want count 0 and an empty (non-null) list", resp)
	}
}

// TestSolvezDuringSolve scrapes /debug/solvez while a request holds its
// solve slot (stretched by SolveDelay) and expects a live snapshot for
// it — the in-CI smoke does the same against a real ruleplaced process.
func TestSolvezDuringSolve(t *testing.T) {
	s, base := startDaemon(t, Config{MaxInFlight: 1, SolveDelay: 300 * time.Millisecond})
	done := make(chan int, 1)
	go func() {
		code, _ := postPlace(t, base, PlaceRequest{
			Problem: testSpec(t, 4),
			Options: RequestOptions{Merging: true, TimeLimitSec: 60},
		})
		done <- code
	}()
	var seen solvezResponse
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/debug/solvez")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&seen); err != nil {
			return false
		}
		return seen.Count >= 1
	})
	if seen.Active[0].TraceID == "" {
		t.Fatalf("live snapshot has no trace ID: %+v", seen.Active[0])
	}
	if seen.Active[0].Phase == "" {
		t.Fatalf("live snapshot has no phase: %+v", seen.Active[0])
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("place status %d", code)
	}
	// The registry empties once the request finishes.
	waitFor(t, func() bool { return s.solves.snapshots() == nil })
}

// TestFlightDumpOnDeadline is the post-mortem path end to end: a solve
// killed by its deadline leaves flight-<trace_id>.jsonl in FlightDir,
// and traceview can parse it — partial, with the terminal done event
// carrying the final incumbent/bound state.
func TestFlightDumpOnDeadline(t *testing.T) {
	dir := t.TempDir()
	_, base := startDaemon(t, Config{MaxInFlight: 1, FlightDir: dir, FlightEvents: 512})
	code, body := postPlace(t, base, PlaceRequest{
		Problem: testSpec(t, 24),
		// Far too little time for a 24-rule merged solve: the solver
		// stops on its deadline poll and the daemon dumps the ring.
		Options: RequestOptions{Merging: true, TimeLimitSec: 0.0005},
	})
	if code != http.StatusOK {
		t.Fatalf("place status %d: %s", code, body)
	}
	var resp PlaceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Placement.Stats.StopReason != "deadline" {
		t.Skipf("solve finished in under 0.5ms (stop reason %q); nothing to dump", resp.Placement.Stats.StopReason)
	}
	path := filepath.Join(dir, "flight-"+resp.TraceID+".jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("no flight dump for deadline-killed solve: %v", err)
	}
	defer f.Close()
	sum, err := traceview.Summarize(f)
	if err != nil {
		t.Fatalf("traceview cannot parse the dump: %v", err)
	}
	if !sum.Partial {
		t.Fatal("flight dump not marked partial (flight_meta header missing)")
	}
	if sum.StopReason != "deadline" {
		t.Fatalf("dump stop reason %q, want deadline", sum.StopReason)
	}
	if err := sum.Check(); err != nil {
		t.Fatalf("dump fails traceview consistency check: %v", err)
	}
}

// TestFlightzEndpoint: after a request, the global ring serves a
// traceview-parseable JSONL dump on demand.
func TestFlightzEndpoint(t *testing.T) {
	s := New(Config{MaxInFlight: 1, Logger: quietLogger(), Metrics: &obs.Metrics{}})
	s.ready.Store(true)
	body, err := json.Marshal(PlaceRequest{
		Problem: testSpec(t, 4),
		Options: RequestOptions{Merging: true, TimeLimitSec: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, resp := serveJSON(t, s, http.MethodPost, "/v1/place", body); code != http.StatusOK {
		t.Fatalf("place status %d: %s", code, resp)
	}
	code, dump := serveJSON(t, s, http.MethodGet, "/debug/flightz", nil)
	if code != http.StatusOK {
		t.Fatalf("flightz status %d", code)
	}
	sum, err := traceview.Summarize(bytes.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Partial || sum.Events < 2 {
		t.Fatalf("flightz dump not a populated partial trace: %+v", sum)
	}
	if sum.SeenEvents == 0 {
		t.Fatal("flightz dump carries no loss accounting")
	}
}

// TestIntrospectionNoPlacementEffect is the daemon-level invariant the
// introspection layer promises (see internal/daemon/introspect.go): the
// placement served with the flight recorder, live progress, and
// profiling watchdog all armed is byte-identical to one served with the
// layer at defaults.
func TestIntrospectionNoPlacementEffect(t *testing.T) {
	req, err := json.Marshal(PlaceRequest{
		Problem: testSpec(t, 12),
		Options: RequestOptions{Merging: true, Workers: 2, TimeLimitSec: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	place := func(t *testing.T, cfg Config) json.RawMessage {
		t.Helper()
		cfg.Logger = quietLogger()
		cfg.Metrics = &obs.Metrics{}
		s := New(cfg)
		s.ready.Store(true)
		code, body := serveJSON(t, s, http.MethodPost, "/v1/place", req)
		if code != http.StatusOK {
			t.Fatalf("place status %d: %s", code, body)
		}
		var got struct {
			Placement json.RawMessage `json:"placement"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		return got.Placement
	}
	dir := t.TempDir()
	on := place(t, Config{MaxInFlight: 2, FlightDir: dir, FlightEvents: 64,
		ProfileThreshold: time.Nanosecond, ProfileDir: dir})
	off := place(t, Config{MaxInFlight: 2})
	if !bytes.Equal(on, off) {
		t.Fatalf("placement differs with introspection armed:\n%s\nvs\n%s", on, off)
	}
}

// TestWatchProfileThreshold exercises the profiling watchdog directly:
// a watch outliving its threshold captures a CPU profile file; a watch
// stopped before the threshold leaves nothing behind.
func TestWatchProfileThreshold(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{MaxInFlight: 1, Logger: quietLogger(), Metrics: &obs.Metrics{},
		ProfileThreshold: 10 * time.Millisecond, ProfileDir: dir})

	// Fast request: stopped before the threshold, no profile.
	stop := s.watchProfile("fast-0001")
	stop()
	if _, err := os.Stat(filepath.Join(dir, "profile-fast-0001.pprof")); !os.IsNotExist(err) {
		t.Fatalf("fast request left a profile (err=%v)", err)
	}

	// Slow request: the watchdog fires, the profile runs until stop.
	stop = s.watchProfile("slow-0001")
	deadline := time.Now().Add(2 * time.Second)
	path := filepath.Join(dir, "profile-slow-0001.pprof")
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never started the profile")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Burn a little CPU so the profile has samples, then stop.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("captured profile is empty")
	}
	if cpuProfileActive.Load() {
		t.Fatal("stop did not release the process-wide profile slot")
	}
}

// TestWatchProfileDisabled: zero threshold (or no directory) arms
// nothing and the returned stop is a safe no-op.
func TestWatchProfileDisabled(t *testing.T) {
	s := New(Config{MaxInFlight: 1, Logger: quietLogger(), Metrics: &obs.Metrics{}})
	stop := s.watchProfile("noop-0001")
	stop()
	stop() // idempotent
}

// TestDumpOnShedRateLimit: shed-triggered dumps are capped at one per
// second of the injected clock.
func TestDumpOnShedRateLimit(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{MaxInFlight: 1, Logger: quietLogger(), Metrics: &obs.Metrics{},
		FlightDir: dir})
	fake := time.Unix(4_000_000, 0)
	s.now = func() time.Time { return fake }
	s.dumpOnShed("shed-a")
	s.dumpOnShed("shed-b") // same second: suppressed
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !strings.Contains(ents[0].Name(), "shed-a") {
		t.Fatalf("same-second sheds wrote %d dumps: %v", len(ents), ents)
	}
	fake = fake.Add(time.Second)
	s.dumpOnShed("shed-c")
	if ents, _ := os.ReadDir(dir); len(ents) != 2 {
		t.Fatalf("next-second shed did not dump: %v", ents)
	}
}
