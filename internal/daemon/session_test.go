package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"rulefit/internal/spec"
)

// sessionOptions are the solver options every session test uses, in
// wire form (must stay in sync with coldPlacement's use).
var sessionOptions = RequestOptions{Merging: true, TimeLimitSec: 60}

// doJSON sends a request with a JSON body and returns status + body.
func doJSON(t *testing.T, method, url string, payload any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// explicitSpec mirrors the daemon's session normalization client-side:
// build the instance and flatten it to explicit form.
func explicitSpec(t *testing.T, specJSON []byte) *spec.Problem {
	t.Helper()
	desc, err := spec.LoadBytes(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := desc.Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec.FromCore(prob)
}

// coldPlacement solves a spec problem via POST /v1/place and returns
// the raw placement JSON — the byte-identity reference for every
// session answer.
func coldPlacement(t *testing.T, base string, sp *spec.Problem) []byte {
	t.Helper()
	probJSON, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	code, body := postPlace(t, base, PlaceRequest{Problem: probJSON, Options: sessionOptions})
	if code != http.StatusOK {
		t.Fatalf("cold place status %d: %s", code, body)
	}
	var resp struct {
		Placement json.RawMessage `json:"placement"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSpace(resp.Placement)
}

// createSession posts /v1/session and decodes the reply.
func createSession(t *testing.T, base string, specJSON []byte) (SessionResponse, json.RawMessage) {
	t.Helper()
	code, body := doJSON(t, http.MethodPost, base+"/v1/session",
		PlaceRequest{Problem: specJSON, Options: sessionOptions})
	if code != http.StatusCreated {
		t.Fatalf("create status %d: %s", code, body)
	}
	return decodeSession(t, body)
}

// decodeSession splits a session reply into its typed form and the
// raw placement bytes.
func decodeSession(t *testing.T, body []byte) (SessionResponse, json.RawMessage) {
	t.Helper()
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("session response: %v\n%s", err, body)
	}
	var raw struct {
		Placement json.RawMessage `json:"placement"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	return sr, bytes.TrimSpace(raw.Placement)
}

// addRuleDelta is a fresh drop rule sized to the instance's width.
func addRuleDelta(sp *spec.Problem, prio int) spec.Delta {
	w := len(sp.Policies[0].Rules[0].Pattern)
	return spec.Delta{
		Op:      spec.OpAddRule,
		Ingress: sp.Policies[0].Ingress,
		Rule: &spec.Rule{
			Pattern:  "1" + strings.Repeat("*", w-1),
			Action:   "drop",
			Priority: prio,
		},
	}
}

// TestSessionLifecycle walks the full session API: create (cold),
// delta (warm), revert (identity), GET, DELETE — asserting every
// answer is byte-identical to a cold /v1/place of the instance the
// session holds at that moment.
func TestSessionLifecycle(t *testing.T) {
	specJSON := testSpec(t, 8)
	s, base := startDaemon(t, Config{MaxInFlight: 2})
	explicit := explicitSpec(t, specJSON)

	sr, pl := createSession(t, base, specJSON)
	if sr.Path != "cold" || sr.Version != 1 || !strings.HasPrefix(sr.SessionID, "s-") {
		t.Fatalf("create response %+v", sr)
	}
	if want := coldPlacement(t, base, explicit); !bytes.Equal(pl, want) {
		t.Fatalf("create placement differs from cold place:\n%s\nvs\n%s", pl, want)
	}
	basePl := pl

	// Warm delta: one policy changes, the rest hit the encode cache.
	delta := addRuleDelta(explicit, 9001)
	code, body := doJSON(t, http.MethodPost, base+"/v1/session/"+sr.SessionID+"/delta",
		DeltaRequest{Deltas: []spec.Delta{delta}})
	if code != http.StatusOK {
		t.Fatalf("delta status %d: %s", code, body)
	}
	dr, dpl := decodeSession(t, body)
	if dr.Path != "warm" || dr.Version != 2 {
		t.Fatalf("delta response path=%s version=%d, want warm v2", dr.Path, dr.Version)
	}
	if dr.Cache.PolicyHits != int64(len(explicit.Policies)-1) {
		t.Fatalf("delta cache stats %+v, want %d policy hits", dr.Cache, len(explicit.Policies)-1)
	}
	updated := explicit.Clone()
	if err := updated.Apply(delta); err != nil {
		t.Fatal(err)
	}
	if want := coldPlacement(t, base, updated); !bytes.Equal(dpl, want) {
		t.Fatalf("warm delta differs from cold place of updated instance:\n%s\nvs\n%s", dpl, want)
	}

	// Reverting restores the original canonical bytes: identity path.
	code, body = doJSON(t, http.MethodPost, base+"/v1/session/"+sr.SessionID+"/delta",
		DeltaRequest{Deltas: []spec.Delta{{
			Op: spec.OpRemoveRule, Ingress: delta.Ingress, Priority: delta.Rule.Priority,
		}}})
	if code != http.StatusOK {
		t.Fatalf("revert status %d: %s", code, body)
	}
	rr, rpl := decodeSession(t, body)
	if rr.Path != "identity" || rr.Version != 3 {
		t.Fatalf("revert response path=%s version=%d, want identity v3", rr.Path, rr.Version)
	}
	if !bytes.Equal(rpl, basePl) {
		t.Fatal("identity answer differs from the original placement")
	}

	// GET reflects the committed state without solving.
	code, body = doJSON(t, http.MethodGet, base+"/v1/session/"+sr.SessionID, nil)
	if code != http.StatusOK {
		t.Fatalf("get status %d: %s", code, body)
	}
	gr, gpl := decodeSession(t, body)
	if gr.Version != 3 || !bytes.Equal(gpl, basePl) {
		t.Fatalf("get response version=%d", gr.Version)
	}

	// Session metrics landed: gauge, per-path counters, cache counters.
	snap := s.met.Snapshot()
	if snap.SessionsActive != 1 {
		t.Fatalf("sessions_active = %d, want 1", snap.SessionsActive)
	}
	paths := map[string]int64{}
	for _, dc := range snap.Deltas {
		paths[dc.Path] = dc.Count
	}
	if paths["warm"] != 1 || paths["identity"] != 1 {
		t.Fatalf("delta path counters = %+v", snap.Deltas)
	}
	var metText bytes.Buffer
	if err := s.met.WritePrometheus(&metText); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rulefit_sessions_active 1",
		`rulefit_session_deltas_total{path="warm"} 1`,
		`rulefit_encode_cache_total{kind="policy",outcome="hit"}`,
	} {
		if !strings.Contains(metText.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metText.String())
		}
	}

	// DELETE drops the session; every later touch is a 404 with a
	// trace ID.
	code, body = doJSON(t, http.MethodDelete, base+"/v1/session/"+sr.SessionID, nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"deleted":true`)) {
		t.Fatalf("delete status %d: %s", code, body)
	}
	if got := s.met.Snapshot().SessionsActive; got != 0 {
		t.Fatalf("sessions_active after delete = %d", got)
	}
}

// TestSessionNotFound asserts unknown/expired sessions answer 404
// with a trace ID on every session route.
func TestSessionNotFound(t *testing.T) {
	_, base := startDaemon(t, Config{MaxInFlight: 1})
	for name, probe := range map[string]struct {
		method, path string
		payload      any
	}{
		"get":    {http.MethodGet, "/v1/session/s-999999-abc", nil},
		"delete": {http.MethodDelete, "/v1/session/s-999999-abc", nil},
		"delta": {http.MethodPost, "/v1/session/s-999999-abc/delta",
			DeltaRequest{Deltas: []spec.Delta{{Op: spec.OpSetCapacity, Switch: 0, Capacity: 5}}}},
	} {
		req, err := http.NewRequest(probe.method, base+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if probe.payload != nil {
			data, err := json.Marshal(probe.payload)
			if err != nil {
				t.Fatal(err)
			}
			req.Body = io.NopCloser(bytes.NewReader(data))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404: %s", name, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Rulefit-Trace-Id") == "" {
			t.Errorf("%s: missing trace ID header", name)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.TraceID == "" {
			t.Errorf("%s: error body %s", name, body)
		}
	}
}

// TestSessionConcurrentDeltas fires commutative deltas concurrently
// at one session: they serialize into distinct monotone versions and
// a final placement identical to a cold solve of all deltas applied.
func TestSessionConcurrentDeltas(t *testing.T) {
	specJSON := testSpec(t, 6)
	_, base := startDaemon(t, Config{MaxInFlight: 4})
	explicit := explicitSpec(t, specJSON)
	sr, _ := createSession(t, base, specJSON)

	const n = 5
	versions := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := doJSON(t, http.MethodPost, base+"/v1/session/"+sr.SessionID+"/delta",
				DeltaRequest{Deltas: []spec.Delta{addRuleDelta(explicit, 9100+i)}})
			if code != http.StatusOK {
				t.Errorf("delta %d status %d: %s", i, code, body)
				return
			}
			dr, _ := decodeSession(t, body)
			versions[i] = dr.Version
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, v := range versions {
		if v < 2 || v > n+1 || seen[v] {
			t.Fatalf("versions %v: want a permutation of 2..%d", versions, n+1)
		}
		seen[v] = true
	}

	seq := explicit.Clone()
	for i := 0; i < n; i++ {
		if err := seq.Apply(addRuleDelta(explicit, 9100+i)); err != nil {
			t.Fatal(err)
		}
	}
	code, body := doJSON(t, http.MethodGet, base+"/v1/session/"+sr.SessionID, nil)
	if code != http.StatusOK {
		t.Fatalf("get status %d", code)
	}
	gr, gpl := decodeSession(t, body)
	if gr.Version != n+1 {
		t.Fatalf("final version %d, want %d", gr.Version, n+1)
	}
	if want := coldPlacement(t, base, seq); !bytes.Equal(gpl, want) {
		t.Fatalf("final placement differs from sequential cold solve:\n%s\nvs\n%s", gpl, want)
	}
}

// TestSessionEvictionLRU fills the manager past MaxSessions and
// checks LRU order and the eviction log line.
func TestSessionEvictionLRU(t *testing.T) {
	var mu sync.Mutex
	var logBuf bytes.Buffer
	syncWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logBuf.Write(p)
	})
	_, base := startDaemon(t, Config{
		MaxInFlight: 1, MaxSessions: 2,
		Logger: slog.New(slog.NewJSONHandler(syncWriter, nil)),
	})

	var ids []string
	for _, rules := range []int{4, 5} {
		sr, _ := createSession(t, base, testSpec(t, rules))
		ids = append(ids, sr.SessionID)
	}
	// Touch the first session so the second becomes the LRU victim.
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/session/"+ids[0], nil); code != http.StatusOK {
		t.Fatalf("touch status %d", code)
	}
	sr3, _ := createSession(t, base, testSpec(t, 6))

	if code, _ := doJSON(t, http.MethodGet, base+"/v1/session/"+ids[1], nil); code != http.StatusNotFound {
		t.Fatalf("expected LRU victim %s evicted, got %d", ids[1], code)
	}
	for _, id := range []string{ids[0], sr3.SessionID} {
		if code, _ := doJSON(t, http.MethodGet, base+"/v1/session/"+id, nil); code != http.StatusOK {
			t.Fatalf("session %s should be live, got %d", id, code)
		}
	}
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "session evicted") || !strings.Contains(logged, ids[1]) {
		t.Fatalf("eviction not logged:\n%s", logged)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestSessionDisableSLOByteIdentity runs the same create+delta
// sequence with and without SLO instrumentation: placement bytes are
// identical, only the Server-Timing header disappears.
func TestSessionDisableSLOByteIdentity(t *testing.T) {
	specJSON := testSpec(t, 8)
	explicit := explicitSpec(t, specJSON)
	delta := addRuleDelta(explicit, 9001)

	run := func(disable bool) (json.RawMessage, string) {
		_, base := startDaemon(t, Config{MaxInFlight: 2, DisableSLO: disable})
		sr, _ := createSession(t, base, specJSON)
		data, err := json.Marshal(DeltaRequest{Deltas: []spec.Delta{delta}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/session/"+sr.SessionID+"/delta", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta status %d: %s", resp.StatusCode, body)
		}
		_, pl := decodeSession(t, body)
		return pl, resp.Header.Get("Server-Timing")
	}

	plOn, timingOn := run(false)
	plOff, timingOff := run(true)
	if !bytes.Equal(plOn, plOff) {
		t.Fatalf("DisableSLO changed delta placement bytes:\n%s\nvs\n%s", plOn, plOff)
	}
	if timingOn == "" {
		t.Fatal("expected Server-Timing with SLO instrumentation on")
	}
	if timingOff != "" {
		t.Fatalf("unexpected Server-Timing with SLO off: %q", timingOff)
	}
}

// TestSessionBadDeltas covers the 4xx session paths.
func TestSessionBadDeltas(t *testing.T) {
	specJSON := testSpec(t, 4)
	_, base := startDaemon(t, Config{MaxInFlight: 1})
	sr, _ := createSession(t, base, specJSON)

	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"invalid json":  {"{", http.StatusBadRequest},
		"unknown field": {`{"bogus":1}`, http.StatusBadRequest},
		"empty deltas":  {`{"deltas":[]}`, http.StatusBadRequest},
		"unknown op":    {`{"deltas":[{"op":"teleport"}]}`, http.StatusBadRequest},
		"bad ingress":   {`{"deltas":[{"op":"add_rule","ingress":424242,"rule":{"pattern":"1*","action":"drop","priority":1}}]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(base+"/v1/session/"+sr.SessionID+"/delta", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d: %s", name, resp.StatusCode, tc.want, body)
		}
	}
	// The session survived every rejection at version 1.
	code, body := doJSON(t, http.MethodGet, base+"/v1/session/"+sr.SessionID, nil)
	if code != http.StatusOK {
		t.Fatalf("get status %d", code)
	}
	gr, _ := decodeSession(t, body)
	if gr.Version != 1 {
		t.Fatalf("version after bad deltas = %d, want 1", gr.Version)
	}
	// Method checks on the session routes.
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/session", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/session = %d, want 405", code)
	}
	if code, _ := doJSON(t, http.MethodPut, base+"/v1/session/"+sr.SessionID, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT session = %d, want 405", code)
	}
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/session/"+sr.SessionID+"/delta", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET delta = %d, want 405", code)
	}
}
