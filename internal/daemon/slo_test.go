package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"rulefit/internal/core"
	"rulefit/internal/obs"
	"rulefit/internal/spec"
)

// TestMetricsEndpointHeaders asserts the scrape endpoints declare
// their payload type explicitly and forbid caching.
func TestMetricsEndpointHeaders(t *testing.T) {
	_, base := startDaemon(t, Config{MaxInFlight: 1})
	for path, wantCT := range map[string]string{
		"/metrics":      "text/plain; version=0.0.4",
		"/metrics/json": "application/json",
		"/statusz":      "application/json",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != wantCT {
			t.Errorf("%s Content-Type = %q, want %q", path, ct, wantCT)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}
}

// TestTraceIDHeaderOnEveryPath asserts X-Rulefit-Trace-Id comes back
// on success, decode-failure 400, body-read-failure 400, and 429 shed
// responses, and matches the trace ID in the body.
func TestTraceIDHeaderOnEveryPath(t *testing.T) {
	post := func(t *testing.T, base, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(base+"/v1/place", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	checkHeader := func(t *testing.T, resp *http.Response, wantCode int) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantCode)
		}
		hdr := resp.Header.Get("X-Rulefit-Trace-Id")
		if !strings.HasPrefix(hdr, "req-") {
			t.Fatalf("X-Rulefit-Trace-Id = %q", hdr)
		}
		var body struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.TraceID != hdr {
			t.Fatalf("body trace_id %q != header %q", body.TraceID, hdr)
		}
	}

	t.Run("success", func(t *testing.T) {
		_, base := startDaemon(t, Config{MaxInFlight: 1})
		req, err := json.Marshal(PlaceRequest{
			Problem: testSpec(t, 4),
			Options: RequestOptions{Merging: true, TimeLimitSec: 60},
		})
		if err != nil {
			t.Fatal(err)
		}
		checkHeader(t, post(t, base, string(req)), http.StatusOK)
	})
	t.Run("bad request decode", func(t *testing.T) {
		_, base := startDaemon(t, Config{MaxInFlight: 1})
		checkHeader(t, post(t, base, "{not json"), http.StatusBadRequest)
	})
	t.Run("bad request body read", func(t *testing.T) {
		_, base := startDaemon(t, Config{MaxInFlight: 1, MaxBodyBytes: 8})
		checkHeader(t, post(t, base, `{"problem": {"far": "too long"}}`), http.StatusBadRequest)
	})
	t.Run("shed", func(t *testing.T) {
		s, base := startDaemon(t, Config{MaxInFlight: 1, MaxQueue: 0})
		s.queued.Add(1) // simulate a full admission queue
		defer s.queued.Add(-1)
		checkHeader(t, post(t, base, `{"problem":{}}`), http.StatusTooManyRequests)
	})
}

// TestServerTimingAndPhaseAttribution drives one successful placement
// and asserts (1) the Server-Timing header attributes wall time to
// the pipeline phases and (2) the same phases land as a labeled
// histogram family on /metrics.
func TestServerTimingAndPhaseAttribution(t *testing.T) {
	s, base := startDaemon(t, Config{MaxInFlight: 1})
	body, err := json.Marshal(PlaceRequest{
		Problem: testSpec(t, 8),
		Options: RequestOptions{Merging: true, TimeLimitSec: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	st := resp.Header.Get("Server-Timing")
	for _, phase := range []string{"queue_wait", "parse", "encode", "model_build", "solve", "extract"} {
		if !strings.Contains(st, phase+";dur=") {
			t.Errorf("Server-Timing missing %s: %q", phase, st)
		}
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	payload, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPrometheusText(bytes.NewReader(payload)); err != nil {
		t.Fatalf("exposition not conformant: %v\n%s", err, payload)
	}
	out := string(payload)
	for _, want := range []string{
		"# TYPE rulefit_request_phase_seconds histogram",
		`rulefit_request_phase_seconds_count{phase="solve"} 1`,
		`rulefit_request_phase_seconds_count{phase="queue_wait"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	if got := len(s.met.Snapshot().PhaseWall); got < 6 {
		t.Fatalf("phase families = %d, want >= 6", got)
	}
}

// TestSecRing drives the lazily-advanced rate ring with explicit
// seconds: in-window sums, expiry past the window, and gaps longer
// than the ring.
func TestSecRing(t *testing.T) {
	r := newSecRing(300)
	base := int64(1_000_000)
	r.addAt(base, 1)
	r.addAt(base+35, 2) // inside the 1m window ending at +90 ([+31, +90])
	r.addAt(base+90, 4)
	if got := r.sumAt(base+90, 60); got != 6 { // 35s and 90s entries
		t.Fatalf("1m sum = %d, want 6", got)
	}
	if got := r.sumAt(base+90, 300); got != 7 {
		t.Fatalf("5m sum = %d, want 7", got)
	}
	// Everything expires once the window slides past it.
	if got := r.sumAt(base+500, 60); got != 0 {
		t.Fatalf("sum after expiry = %d, want 0", got)
	}
	// A gap far longer than the ring wraps cleanly.
	r.addAt(base+10_000, 5)
	if got := r.sumAt(base+10_000, 60); got != 5 {
		t.Fatalf("sum after long gap = %d, want 5", got)
	}
}

// TestStatusz exercises the endpoint end to end: after one success
// and one shed, the sliding windows report both and the shed rate.
func TestStatusz(t *testing.T) {
	s, base := startDaemon(t, Config{MaxInFlight: 1, MaxQueue: 0})
	code, _ := postPlace(t, base, PlaceRequest{
		Problem: testSpec(t, 4),
		Options: RequestOptions{Merging: true, TimeLimitSec: 60},
	})
	if code != http.StatusOK {
		t.Fatalf("place status %d", code)
	}
	s.queued.Add(1) // simulate a full admission queue
	code, _ = postPlace(t, base, PlaceRequest{Problem: testSpec(t, 4)})
	s.queued.Add(-1)
	if code != http.StatusTooManyRequests {
		t.Fatalf("shed status %d", code)
	}

	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.MaxInFlight != 1 || snap.MaxQueue != 0 {
		t.Fatalf("limits = %d/%d, want 1/0", snap.MaxInFlight, snap.MaxQueue)
	}
	if snap.Requests1m != 2 || snap.Shed1m != 1 {
		t.Fatalf("1m window = %d requests / %d shed, want 2/1", snap.Requests1m, snap.Shed1m)
	}
	if snap.ShedRate1m != 0.5 || snap.ShedRate5m != 0.5 {
		t.Fatalf("shed rates = %g/%g, want 0.5", snap.ShedRate1m, snap.ShedRate5m)
	}
	if snap.UptimeSec < 0 {
		t.Fatalf("uptime %g", snap.UptimeSec)
	}
}

// TestSLOInstrumentationNoPlacementEffect is the overhead gate: the
// placement served with all SLO instrumentation disabled is
// byte-identical to the instrumented one, and the disabled daemon
// emits neither Server-Timing nor phase histograms.
func TestSLOInstrumentationNoPlacementEffect(t *testing.T) {
	specJSON := testSpec(t, 12)
	req, err := json.Marshal(PlaceRequest{
		Problem: specJSON,
		Options: RequestOptions{Merging: true, Workers: 2, TimeLimitSec: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	place := func(t *testing.T, disable bool) (*http.Response, []byte) {
		t.Helper()
		_, base := startDaemon(t, Config{MaxInFlight: 2, DisableSLO: disable})
		resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}
	extract := func(t *testing.T, body []byte) json.RawMessage {
		t.Helper()
		var got struct {
			Placement json.RawMessage `json:"placement"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		return got.Placement
	}

	onResp, onBody := place(t, false)
	offResp, offBody := place(t, true)
	if onResp.Header.Get("Server-Timing") == "" {
		t.Fatal("instrumented response missing Server-Timing")
	}
	if st := offResp.Header.Get("Server-Timing"); st != "" {
		t.Fatalf("disabled daemon sent Server-Timing %q", st)
	}
	// Trace IDs are not SLO instrumentation: present either way.
	if offResp.Header.Get("X-Rulefit-Trace-Id") == "" {
		t.Fatal("disabled daemon missing X-Rulefit-Trace-Id")
	}
	if !bytes.Equal(extract(t, onBody), extract(t, offBody)) {
		t.Fatalf("placement differs with instrumentation disabled:\n%s\nvs\n%s", onBody, offBody)
	}

	// Both match the in-process placement through the same projection.
	desc, err := spec.LoadBytes(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := desc.Build()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Place(prob, core.Options{Merging: true, Workers: 2, TimeLimit: 60 * 1e9})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(EncodePlacement(pl))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(extract(t, onBody)), want) {
		t.Fatal("daemon placement differs from in-process")
	}
}
