// Package daemon implements the long-running rule placement service
// behind cmd/ruleplaced. It wraps the core.Place pipeline in an HTTP
// API with production telemetry: request-scoped trace IDs joining
// phase spans, solver events, and log lines; latency/size histograms
// and saturation gauges on /metrics; a bounded in-flight limit with
// 429 shedding; health/readiness endpoints; and graceful drain.
//
// Determinism rule: the daemon adds observability around core.Place,
// never inside it. A placement served over HTTP is byte-identical to
// the same problem solved in-process with the same options (see
// TestDaemonMatchesInProcess).
package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/ilp"
	"rulefit/internal/obs"
	"rulefit/internal/spec"
	"rulefit/internal/state"
	"rulefit/internal/topology"
)

// Config tunes the placement daemon. The zero value is usable for
// tests, but production call sites must state MaxInFlight explicitly
// (the optzero analyzer flags Config literals that leave it unset: an
// unbounded daemon admits arbitrarily many concurrent solves and each
// branch & bound run can hold hundreds of megabytes).
type Config struct {
	// MaxInFlight bounds concurrently solving requests
	// (0 = GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests admitted but waiting for a solve slot;
	// arrivals beyond MaxInFlight+MaxQueue are shed with 429 (default 0:
	// shed as soon as all slots are busy).
	MaxQueue int
	// DefaultTimeLimit applies to requests that set no time limit
	// (default 60s).
	DefaultTimeLimit time.Duration
	// MaxTimeLimit caps per-request time limits (default 10m).
	MaxTimeLimit time.Duration
	// MaxBodyBytes caps the request body size (default 8 MiB).
	MaxBodyBytes int64
	// TraceDir, when non-empty, writes each request's solver event
	// stream as <TraceDir>/trace-<trace_id>.jsonl, joinable with the
	// request's log line and spans by trace ID.
	TraceDir string
	// Logger receives one structured line per request (default: JSON
	// to stderr).
	Logger *slog.Logger
	// Metrics is the instrument registry the daemon records into and
	// /metrics exposes (default obs.Default).
	Metrics *obs.Metrics
	// DisableSLO turns off the per-request SLO instrumentation: phase
	// attribution histograms, Server-Timing response headers, and the
	// /statusz rate rings. Placements are byte-identical either way
	// (TestSLOInstrumentationNoPlacementEffect); the switch exists to
	// prove it and to strip the last few microseconds if ever needed.
	DisableSLO bool
	// SolveDelay artificially extends each request's solve-slot
	// occupancy (applied after slot acquisition, before parsing).
	// Production daemons leave it zero; load experiments set it so the
	// admission behavior — which requests shed at a given offered
	// concurrency — is a function of MaxInFlight/MaxQueue rather than
	// of how fast tiny instances happen to solve. Placement bytes are
	// unaffected.
	SolveDelay time.Duration
	// MaxSessions bounds live stateful sessions (POST /v1/session);
	// creating one past the cap evicts the least-recently-used session
	// (default 64).
	MaxSessions int
	// FlightEvents sizes the always-on flight-recorder rings (global
	// and per-request) in events (default 4096). The rings retain the
	// tail of the solver event stream for post-mortem dumps; see
	// obs.FlightRecorder for the degradation-under-pressure contract.
	FlightEvents int
	// FlightDir, when non-empty, receives flight dumps as
	// <FlightDir>/flight-<trace_id>.jsonl when a solve ends on its
	// deadline or node limit, panics, or when admission sheds (default:
	// TraceDir). Empty with an empty TraceDir disables file dumps;
	// /debug/flightz still serves the global ring on demand.
	FlightDir string
	// ProfileThreshold, when positive, arms a per-request watchdog:
	// solves still running after the threshold get a CPU profile
	// captured until they finish (one at a time process-wide), written
	// as <ProfileDir>/profile-<trace_id>.pprof, and every solve gets
	// pprof goroutine labels (trace_id, phase). Zero disables both.
	ProfileThreshold time.Duration
	// ProfileDir is where threshold profiles land (default: TraceDir).
	ProfileDir string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeLimit <= 0 {
		c.DefaultTimeLimit = 60 * time.Second
	}
	if c.MaxTimeLimit <= 0 {
		c.MaxTimeLimit = 10 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = 4096
	}
	if c.FlightDir == "" {
		c.FlightDir = c.TraceDir
	}
	if c.ProfileDir == "" {
		c.ProfileDir = c.TraceDir //lint:sharedmut defaults are applied before the Server exists
	}
	return c
}

// Server is the placement daemon: an HTTP handler set plus admission
// control. Create with New, serve with Start/Serve (or mount Handler
// on a test server), stop with Shutdown.
type Server struct {
	cfg      Config
	log      *slog.Logger
	met      *obs.Metrics
	sem      chan struct{}
	seq      atomic.Uint64
	queued   atomic.Int64
	ready    atomic.Bool
	mux      *http.ServeMux
	debug    *http.ServeMux
	srv      *http.Server
	ln       net.Listener
	started  time.Time
	reqRing  *secRing // finished requests per second, for /statusz rates
	shedRing *secRing // 429-shed requests per second
	sessions *state.Manager
	// now is the server's clock (time.Now in production); tests inject
	// it to drive the rate rings and uptime without sleeping.
	now func() time.Time
	// flight is the global always-on flight recorder: every solve's
	// events feed it alongside the per-request ring, so a shed or an
	// on-demand /debug/flightz dump shows what the whole daemon was
	// doing lately.
	flight *obs.FlightRecorder
	// solves registers live requests' progress cells for /debug/solvez.
	solves *solveReg
	// shedDumpSec rate-limits shed-triggered flight dumps to 1/sec.
	shedDumpSec atomic.Int64
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		met:      cfg.Metrics,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		reqRing:  newSecRing(statusRingSlots),
		shedRing: newSecRing(statusRingSlots),
		now:      time.Now,
		flight:   obs.NewFlightRecorder(obs.FlightOpts{Size: cfg.FlightEvents}),
		solves:   newSolveReg(),
	}
	s.sessions = state.NewManager(state.Config{MaxSessions: cfg.MaxSessions, Logger: cfg.Logger})
	s.mux.HandleFunc("/v1/place", s.handlePlace)
	s.mux.HandleFunc("/v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("/v1/session/", s.handleSession)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/json", s.handleMetricsJSON)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/solvez", s.handleSolvez)
	s.mux.HandleFunc("/debug/flightz", s.handleFlightz)

	// The debug mux carries pprof (and a metrics mirror) so profiling
	// endpoints can be bound to a loopback-only address in production.
	s.debug = http.NewServeMux()
	s.debug.HandleFunc("/debug/pprof/", pprof.Index)
	s.debug.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.debug.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.debug.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.debug.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.debug.HandleFunc("/metrics", s.handleMetrics)
	s.debug.HandleFunc("/debug/solvez", s.handleSolvez)
	s.debug.HandleFunc("/debug/flightz", s.handleFlightz)
	return s
}

// Handler returns the API handler (place, metrics, health).
func (s *Server) Handler() http.Handler { return s.mux }

// DebugHandler returns the pprof/debug handler.
func (s *Server) DebugHandler() http.Handler { return s.debug }

// Start binds addr (":0" for an ephemeral port) and marks the server
// ready. Serve must be called to accept connections.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.ready.Store(true)
	return nil
}

// Addr returns the bound address (after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown. Like http.Server.Serve it
// returns http.ErrServerClosed on graceful stop.
func (s *Server) Serve() error {
	if s.srv == nil {
		return errors.New("daemon: Serve before Start")
	}
	return s.srv.Serve(s.ln)
}

// Shutdown drains the server: readiness flips to 503 immediately (so
// load balancers stop routing), no new connections are accepted, and
// the call blocks until in-flight requests complete or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// PlaceRequest is the POST /v1/place body: an internal/spec problem
// description plus per-request solver options.
type PlaceRequest struct {
	Problem json.RawMessage `json:"problem"`
	Options RequestOptions  `json:"options"`
}

// RequestOptions is the per-request subset of core.Options, in wire
// form.
type RequestOptions struct {
	// Backend is "ilp" (default) or "sat".
	Backend string `json:"backend,omitempty"`
	// Objective is "rules" (default), "traffic", "weighted", or
	// "minmaxload".
	Objective       string `json:"objective,omitempty"`
	Merging         bool   `json:"merging,omitempty"`
	PathSlicing     bool   `json:"pathSlicing,omitempty"`
	RemoveRedundant bool   `json:"removeRedundant,omitempty"`
	SatisfyOnly     bool   `json:"satisfyOnly,omitempty"`
	// Workers sets branch & bound parallelism (0 = GOMAXPROCS). The
	// placement is independent of the worker count.
	Workers int `json:"workers,omitempty"`
	// TimeLimitSec bounds the solve; 0 uses the daemon default and the
	// daemon cap always applies.
	TimeLimitSec float64 `json:"timeLimitSec,omitempty"`
}

// build converts wire options to core.Options (without Request/Trace).
func (ro RequestOptions) build(cfg Config) (core.Options, error) {
	opts := core.Options{
		Merging:         ro.Merging,
		PathSlicing:     ro.PathSlicing,
		RemoveRedundant: ro.RemoveRedundant,
		SatisfyOnly:     ro.SatisfyOnly,
		Workers:         ro.Workers,
	}
	switch ro.Backend {
	case "", "ilp":
		opts.Backend = core.BackendILP
	case "sat":
		opts.Backend = core.BackendSAT
	default:
		return opts, fmt.Errorf("unknown backend %q", ro.Backend)
	}
	switch ro.Objective {
	case "", "rules":
		opts.Objective = core.ObjTotalRules
	case "traffic":
		opts.Objective = core.ObjTraffic
	case "weighted":
		opts.Objective = core.ObjWeightedSwitches
	case "minmaxload":
		opts.Objective = core.ObjMinMaxLoad
	default:
		return opts, fmt.Errorf("unknown objective %q", ro.Objective)
	}
	if ro.TimeLimitSec < 0 {
		return opts, fmt.Errorf("negative timeLimitSec %g", ro.TimeLimitSec)
	}
	opts.TimeLimit = time.Duration(ro.TimeLimitSec * float64(time.Second))
	if opts.TimeLimit == 0 {
		opts.TimeLimit = cfg.DefaultTimeLimit
	}
	if opts.TimeLimit > cfg.MaxTimeLimit {
		opts.TimeLimit = cfg.MaxTimeLimit
	}
	return opts, nil
}

// BuildOptions converts the wire options to core.Options with the
// given time-limit policy, exactly as the daemon does for a served
// request. The load harness's in-process mode reuses it so both paths
// solve with identical options (the byte-identity contract).
func (ro RequestOptions) BuildOptions(defaultLimit, maxLimit time.Duration) (core.Options, error) {
	cfg := Config{MaxInFlight: 1, DefaultTimeLimit: defaultLimit, MaxTimeLimit: maxLimit}
	return ro.build(cfg.withDefaults())
}

// PlaceResponse is the POST /v1/place reply. Placement is the
// deterministic part: byte-identical for identical (problem, options)
// pairs regardless of transport, worker count, or attached telemetry.
// TraceID and WallMS are observational.
type PlaceResponse struct {
	TraceID   string    `json:"trace_id"`
	WallMS    float64   `json:"wall_ms"`
	Placement Placement `json:"placement"`
}

// Placement is the JSON-stable projection of a core.Placement.
type Placement struct {
	Status     string    `json:"status"`
	TotalRules int       `json:"total_rules"`
	Objective  float64   `json:"objective"`
	MaxLoad    float64   `json:"max_load"`
	Assign     [][][]int `json:"assign"`
	MergedAt   [][]int   `json:"merged_at"`
	Stats      Stats     `json:"stats"`
}

// Stats is the deterministic solver-effort subset of core.Stats
// (wall-clock fields are deliberately absent).
type Stats struct {
	Variables    int     `json:"variables"`
	Constraints  int     `json:"constraints"`
	Nodes        int     `json:"nodes"`
	SimplexIters int     `json:"simplex_iters"`
	StopReason   string  `json:"stop_reason"`
	BestBound    float64 `json:"best_bound"`
	Gap          float64 `json:"gap"`
}

// EncodePlacement projects a core.Placement into the wire form. The
// projection is a pure function of the placement, so two byte-equal
// placements encode to byte-equal JSON.
func EncodePlacement(pl *core.Placement) Placement {
	out := Placement{
		Status:     pl.Status.String(),
		TotalRules: pl.TotalRules,
		Objective:  pl.Objective,
		MaxLoad:    pl.MaxLoad,
		Assign:     make([][][]int, len(pl.Assign)),
		MergedAt:   make([][]int, len(pl.MergedAt)),
		Stats: Stats{
			Variables:    pl.Stats.Variables,
			Constraints:  pl.Stats.Constraints,
			Nodes:        pl.Stats.BnBNodes,
			SimplexIters: pl.Stats.SimplexIters,
			StopReason:   pl.Stats.StopReason.String(),
			BestBound:    pl.Stats.BestBound,
			Gap:          pl.Stats.Gap,
		},
	}
	for pi := range pl.Assign {
		out.Assign[pi] = make([][]int, len(pl.Assign[pi]))
		for ri := range pl.Assign[pi] {
			out.Assign[pi][ri] = switchIDs(pl.Assign[pi][ri])
		}
	}
	for g := range pl.MergedAt {
		out.MergedAt[g] = switchIDs(pl.MergedAt[g])
	}
	return out
}

// switchIDs converts a switch list to plain ints ([] rather than null
// for empty, keeping the JSON stable).
func switchIDs(sws []topology.SwitchID) []int {
	out := make([]int, len(sws))
	for i, sw := range sws {
		out[i] = int(sw)
	}
	return out
}

// errorResponse is the JSON error body.
type errorResponse struct {
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error"`
}

// handlePlace serves POST /v1/place.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	// The trace ID is derived even when the read failed (from the
	// partial body), so every response — including this 400 — carries
	// X-Rulefit-Trace-Id and is joinable with its log line.
	traceID := obs.TraceIDFor(s.seq.Add(1), body)
	st := requestState{traceID: traceID, start: start}
	if err != nil {
		st.code, st.status = http.StatusBadRequest, "bad_request"
		st.err = fmt.Errorf("reading body: %w", err)
		s.finish(w, r, st)
		return
	}

	// Register the request's live-progress cell before admission so
	// /debug/solvez sees it through queue wait and solve alike; the
	// solver overwrites the cell from its sequential sections.
	prog := &obs.Progress{}
	prog.Publish(obs.ProgressSnapshot{TraceID: traceID, Phase: "admitted", Gap: -1})
	s.solves.add(traceID, prog)
	defer s.solves.remove(traceID)

	release, ok := s.acquireSlot(r, &st)
	if !ok {
		s.finish(w, r, st)
		return
	}
	defer release()

	parseStart := time.Now()
	var req PlaceRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || len(req.Problem) == 0 {
		if err == nil {
			err = errors.New("missing problem")
		}
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	desc, err := spec.LoadBytes(req.Problem)
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	prob, err := desc.Build()
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	opts, err := req.Options.build(s.cfg)
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	opts.Monitors, err = desc.BuildMonitors()
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	st.parse = time.Since(parseStart)
	opts.Request = obs.NewRequestCtx(traceID)
	st.trace = opts.Request.Trace
	opts.Progress = prog
	opts.ProfileLabels = s.cfg.ProfileThreshold > 0

	var traceFile *os.File
	var traceJW *obs.JSONLWriter
	if s.cfg.TraceDir != "" {
		f, err := os.Create(filepath.Join(s.cfg.TraceDir, "trace-"+traceID+".jsonl"))
		if err != nil {
			st.code, st.status, st.err = http.StatusInternalServerError, "error", err
			s.finish(w, r, st)
			return
		}
		traceFile = f
		traceJW = obs.NewJSONLWriter(f)
	}
	// Every solve feeds a per-request flight ring (post-mortem scoped to
	// this request) and the server's global ring, on top of the optional
	// full trace file. Sinks never feed back: the placement is
	// byte-identical whatever is attached.
	rec := obs.NewFlightRecorder(obs.FlightOpts{Size: s.cfg.FlightEvents})
	sinks := []obs.Sink{rec, s.flight}
	if traceJW != nil {
		sinks = append(sinks, traceJW)
	}
	opts.SolverSink = obs.Multi(sinks...)
	stopProf := s.watchProfile(traceID)
	defer stopProf()
	defer func() {
		if p := recover(); p != nil {
			s.dumpFlight(rec, traceID, "panic")
			panic(p)
		}
	}()

	pl, err := core.Place(prob, opts)
	if traceFile != nil {
		if ferr := traceJW.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		st.code, st.status, st.err = http.StatusInternalServerError, "error", err
		s.finish(w, r, st)
		return
	}
	// A solve that died on its budget gets an automatic post-mortem:
	// the per-request ring holds the tail of its event stream,
	// including the final incumbent/bound state.
	if pl.Stats.StopReason == ilp.StopDeadline || pl.Stats.StopReason == ilp.StopNodeLimit {
		s.dumpFlight(rec, traceID, pl.Stats.StopReason.String())
	}
	st.code, st.status = http.StatusOK, pl.Status.String()
	st.placement = pl
	s.finish(w, r, st)
}

// statusClientClosed mirrors the conventional nginx 499 code for
// client-canceled requests; net/http has no named constant for it.
const statusClientClosed = 499

// acquireSlot runs the admission policy for one solve-bound request:
// MaxInFlight solving, MaxQueue waiting, 429 beyond, 499 when the
// client leaves the queue. On success it returns the release func the
// caller must defer; on failure st carries the refusal and the caller
// just finishes the request.
func (s *Server) acquireSlot(r *http.Request, st *requestState) (func(), bool) {
	if s.queued.Add(1) > int64(s.cfg.MaxInFlight+s.cfg.MaxQueue) {
		s.queued.Add(-1)
		st.code, st.status = http.StatusTooManyRequests, "shed"
		st.err = errors.New("server at capacity")
		// Shedding means the daemon is saturated — capture what it was
		// busy with (rate-limited inside).
		s.dumpOnShed(st.traceID)
		return nil, false
	}
	s.met.QueueDepth().Add(1)
	admit := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.met.QueueDepth().Add(-1)
		st.queueWait = time.Since(admit)
	case <-r.Context().Done():
		s.met.QueueDepth().Add(-1)
		s.queued.Add(-1)
		st.code, st.status = statusClientClosed, "canceled"
		st.err = r.Context().Err()
		return nil, false
	}
	s.met.InFlight().Add(1)
	if s.cfg.SolveDelay > 0 {
		time.Sleep(s.cfg.SolveDelay)
	}
	return func() {
		s.met.InFlight().Add(-1)
		<-s.sem
		s.queued.Add(-1)
	}, true
}

// requestState accumulates one request's outcome for the response,
// the log line, and the metrics sample.
type requestState struct {
	traceID   string
	op        string // log message ("" = "place")
	code      int
	status    string
	err       error
	placement *core.Placement
	// body, when non-nil, overrides the success response JSON (the
	// session endpoints use their own shapes; /v1/place keeps
	// PlaceResponse). A *SessionResponse gets WallMS stamped by finish.
	body      any
	start     time.Time
	queueWait time.Duration // admission to solve-slot acquisition
	parse     time.Duration // body decode + spec build + option parse
	trace     *obs.Trace    // request span tree (phase attribution)
}

// phaseDur is one attributed slice of a request's wall time.
type phaseDur struct {
	name string
	d    time.Duration
}

// phases flattens the request's per-phase durations: the queue wait
// and parse intervals measured by the handler, plus the wall time of
// each child of the core "place" span (encode, model_build, solve,
// extract). Requests that never reached the solver report only the
// handler-measured phases.
func (st requestState) phases() []phaseDur {
	var out []phaseDur
	if st.queueWait > 0 {
		out = append(out, phaseDur{"queue_wait", st.queueWait})
	}
	if st.parse > 0 {
		out = append(out, phaseDur{"parse", st.parse})
	}
	for _, root := range st.trace.Roots() {
		if root.Name() != "place" {
			continue
		}
		for _, ch := range root.Children() {
			out = append(out, phaseDur{ch.Name(), ch.Wall()})
		}
	}
	return out
}

// serverTiming renders phases as a Server-Timing header value
// (metric;dur=milliseconds, comma-separated, in pipeline order).
func serverTiming(phases []phaseDur) string {
	var sb bytes.Buffer
	for i, p := range phases {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s;dur=%.3f", p.name, float64(p.d.Microseconds())/1e3)
	}
	return sb.String()
}

// finish writes the response, the per-request log line, and the
// metrics sample — exactly once per request.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, st requestState) {
	wall := time.Since(st.start)
	sample := obs.RequestSample{Status: st.status}
	attrs := []slog.Attr{
		slog.String("trace_id", st.traceID),
		slog.String("status", st.status),
		slog.Int("code", st.code),
		slog.Float64("wall_ms", float64(wall.Microseconds())/1e3),
	}
	level := slog.LevelInfo
	if st.placement != nil {
		sample.StopReason = st.placement.Stats.StopReason.String()
		sample.Placed = true
		sample.InstalledRules = st.placement.TotalRules
		attrs = append(attrs,
			slog.Int("nodes", st.placement.Stats.BnBNodes),
			slog.Float64("gap", st.placement.Stats.Gap),
			slog.String("stop_reason", sample.StopReason),
			slog.Int("total_rules", st.placement.TotalRules),
		)
	}
	if st.err != nil {
		attrs = append(attrs, slog.String("error", st.err.Error()))
		level = slog.LevelWarn
	}
	s.met.RecordRequest(sample)
	var phases []phaseDur
	if !s.cfg.DisableSLO {
		phases = st.phases()
		for _, p := range phases {
			s.met.RecordPhaseTrace(p.name, p.d, st.traceID)
		}
		now := s.now().Unix()
		s.reqRing.addAt(now, 1)
		if st.status == "shed" {
			s.shedRing.addAt(now, 1)
		}
	}
	op := st.op
	if op == "" {
		op = "place"
	}
	s.log.LogAttrs(r.Context(), level, op, attrs...)

	if st.traceID != "" {
		w.Header().Set("X-Rulefit-Trace-Id", st.traceID)
	}
	if len(phases) > 0 {
		w.Header().Set("Server-Timing", serverTiming(phases))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(st.code)
	enc := json.NewEncoder(w)
	if st.body != nil {
		if sr, ok := st.body.(*SessionResponse); ok {
			//lint:detsource measured latency is the point of this field
			sr.WallMS = float64(wall.Microseconds()) / 1e3
		}
		if err := enc.Encode(st.body); err != nil {
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "write_response",
				slog.String("trace_id", st.traceID), slog.String("error", err.Error()))
		}
		return
	}
	if st.placement == nil {
		msg := ""
		if st.err != nil {
			msg = st.err.Error()
		}
		if err := enc.Encode(errorResponse{TraceID: st.traceID, Error: msg}); err != nil {
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "write_response",
				slog.String("trace_id", st.traceID), slog.String("error", err.Error()))
		}
		return
	}
	resp := PlaceResponse{
		TraceID: st.traceID,
		//lint:detsource measured latency is the point of this field
		WallMS:    float64(wall.Microseconds()) / 1e3,
		Placement: EncodePlacement(st.placement),
	}
	if err := enc.Encode(resp); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "write_response",
			slog.String("trace_id", st.traceID), slog.String("error", err.Error()))
	}
}

// handleMetrics serves the Prometheus text exposition. Cache-Control
// no-store keeps intermediaries from serving stale scrapes.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Header().Set("Cache-Control", "no-store")
	if err := s.met.WritePrometheus(w); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "metrics",
			slog.String("error", err.Error()))
	}
}

// handleMetricsJSON serves the JSON snapshot.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	if err := s.met.WriteJSON(w); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "metrics_json",
			slog.String("error", err.Error()))
	}
}

// handleHealthz reports process liveness (always 200 once serving).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports routability: 200 while accepting work, 503
// before Start and during drain.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
