package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/obs"
	"rulefit/internal/routing"
	"rulefit/internal/spec"
	"rulefit/internal/topology"
)

// testSpec builds a small benchgen-style problem description (fat-tree,
// spread pairs, generated policies) and returns it as spec JSON.
func testSpec(t *testing.T, rules int) []byte {
	t.Helper()
	const k, capacity, hosts, ingresses, ppi = 4, 60, 2, 4, 4
	topo, err := topology.FatTree(k, capacity, hosts)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := routing.SpreadPairs(topo, ingresses, ppi, 7)
	if err != nil {
		t.Fatal(err)
	}
	desc := &spec.Problem{
		Topology: spec.Topology{Type: "fattree", K: k, Capacity: capacity, Hosts: hosts},
		Routing:  spec.Routing{Seed: 8},
	}
	seen := map[int]bool{}
	for _, p := range pairs {
		desc.Routing.Pairs = append(desc.Routing.Pairs, spec.Pair{In: int(p.In), Out: int(p.Out)})
		if !seen[int(p.In)] {
			seen[int(p.In)] = true
			desc.Policies = append(desc.Policies, spec.Policy{
				Ingress:  int(p.In),
				Generate: &spec.Gen{NumRules: rules, Seed: 7},
			})
		}
	}
	data, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// quietLogger drops log output so tests don't spam stderr.
func quietLogger() *slog.Logger { return slog.New(slog.NewJSONHandler(io.Discard, nil)) }

// startDaemon runs a server on an ephemeral port and tears it down with
// the test. Each daemon gets its own Metrics instance to avoid
// cross-test bleed through obs.Default.
func startDaemon(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.Metrics{}
	}
	s := New(cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("serve returned %v", err)
		}
	})
	return s, "http://" + s.Addr()
}

// postPlace sends one placement request and returns the HTTP status and
// raw body.
func postPlace(t *testing.T, base string, req PlaceRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestDaemonMatchesInProcess is the transport half of the determinism
// contract: the placement served over HTTP is byte-identical to solving
// the same spec in-process, and replaying the request yields the same
// bytes again.
func TestDaemonMatchesInProcess(t *testing.T) {
	specJSON := testSpec(t, 12)
	_, base := startDaemon(t, Config{MaxInFlight: 2})
	req := PlaceRequest{
		Problem: specJSON,
		Options: RequestOptions{Merging: true, Workers: 2, TimeLimitSec: 60},
	}
	code, body := postPlace(t, base, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got struct {
		TraceID   string          `json:"trace_id"`
		Placement json.RawMessage `json:"placement"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got.TraceID, "req-") {
		t.Fatalf("trace ID %q", got.TraceID)
	}

	// The same solve in-process, through the same wire projection.
	desc, err := spec.LoadBytes(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := desc.Build()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Place(prob, core.Options{
		Merging: true, Workers: 2, TimeLimit: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(EncodePlacement(pl))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got.Placement), want) {
		t.Fatalf("daemon placement differs from in-process:\n%s\nvs\n%s", got.Placement, want)
	}

	// Replay: identical placement bytes, and a trace ID with the same
	// content hash (only the sequence number advances).
	code2, body2 := postPlace(t, base, req)
	if code2 != http.StatusOK {
		t.Fatalf("replay status %d", code2)
	}
	var got2 struct {
		TraceID   string          `json:"trace_id"`
		Placement json.RawMessage `json:"placement"`
	}
	if err := json.Unmarshal(body2, &got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Placement, got2.Placement) {
		t.Fatal("replayed placement differs")
	}
	hashOf := func(id string) string { return id[strings.LastIndex(id, "-"):] }
	if hashOf(got.TraceID) != hashOf(got2.TraceID) || got.TraceID == got2.TraceID {
		t.Fatalf("trace IDs %q, %q: want same body hash, distinct sequence", got.TraceID, got2.TraceID)
	}
}

// TestDaemonMetricsConformant scrapes /metrics after live traffic and
// validates the payload against the shared exposition checker.
func TestDaemonMetricsConformant(t *testing.T) {
	s, base := startDaemon(t, Config{MaxInFlight: 2})
	code, _ := postPlace(t, base, PlaceRequest{
		Problem: testSpec(t, 8),
		Options: RequestOptions{Merging: true, TimeLimitSec: 60},
	})
	if code != http.StatusOK {
		t.Fatalf("place status %d", code)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPrometheusText(bytes.NewReader(payload)); err != nil {
		t.Fatalf("exposition not conformant: %v\n%s", err, payload)
	}
	out := string(payload)
	for _, want := range []string{
		`rulefit_requests_total{status="optimal",stop_reason="none"} 1`,
		"rulefit_installed_rules_count 1",
		"rulefit_in_flight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// The JSON mirror parses and agrees on the request count.
	jresp, err := http.Get(base + "/metrics/json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap obs.MetricsSnapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Requests) != 1 || snap.Requests[0].Count != 1 {
		t.Fatalf("json snapshot requests = %+v", snap.Requests)
	}
	// The debug mux mirrors /metrics and serves pprof.
	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", rec.Code)
	}
}

// TestDaemonSheddingAndCancel drives the admission control: with the
// single solve slot held, a waiting request sheds the next arrival with
// 429, and canceling the waiter yields the 499 path.
func TestDaemonSheddingAndCancel(t *testing.T) {
	s, base := startDaemon(t, Config{MaxInFlight: 1, MaxQueue: 0})
	s.sem <- struct{}{} // hold the only solve slot
	defer func() { <-s.sem }()

	body, err := json.Marshal(PlaceRequest{Problem: testSpec(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// Request A admits and waits for the slot.
	ctx, cancel := context.WithCancel(context.Background())
	reqA, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/place", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(reqA)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("waiter completed with %d while slot was held", resp.StatusCode)
		}
		aDone <- err
	}()
	waitFor(t, func() bool { return s.met.QueueDepth().Value() == 1 })

	// Request B exceeds MaxInFlight+MaxQueue and is shed.
	code, shedBody := postPlace(t, base, PlaceRequest{Problem: testSpec(t, 4)})
	if code != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", code, shedBody)
	}
	var shed errorResponse
	if err := json.Unmarshal(shedBody, &shed); err != nil {
		t.Fatal(err)
	}
	if shed.Error == "" || shed.TraceID == "" {
		t.Fatalf("shed response %+v", shed)
	}

	// Canceling A exercises the client-closed path and frees the queue.
	cancel()
	if err := <-aDone; err == nil {
		t.Fatal("canceled request returned no error")
	}
	waitFor(t, func() bool { return s.met.QueueDepth().Value() == 0 })

	// The shed and canceled outcomes landed in the request counter.
	snap := s.met.Snapshot()
	counts := map[string]int64{}
	for _, rc := range snap.Requests {
		counts[rc.Status] = rc.Count
	}
	if counts["shed"] != 1 || counts["canceled"] != 1 {
		t.Fatalf("request counts = %+v", snap.Requests)
	}
}

// TestDaemonGracefulDrain verifies Shutdown completes an in-flight
// request: a request waiting for the solve slot survives the drain,
// solves, and returns 200 while readiness reports 503.
func TestDaemonGracefulDrain(t *testing.T) {
	cfg := Config{MaxInFlight: 1, Logger: quietLogger(), Metrics: &obs.Metrics{}}
	s := New(cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	base := "http://" + s.Addr()

	// Readiness is up before the drain.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}

	s.sem <- struct{}{} // park the request in the queue
	body, err := json.Marshal(PlaceRequest{
		Problem: testSpec(t, 8),
		Options: RequestOptions{Merging: true, TimeLimitSec: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body []byte
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			reqDone <- result{}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		reqDone <- result{resp.StatusCode, data}
	}()
	waitFor(t, func() bool { return s.met.QueueDepth().Value() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Readiness flips immediately, before the drain completes.
	waitFor(t, func() bool {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rec.Code == http.StatusServiceUnavailable
	})

	<-s.sem // release the slot; the parked request now solves
	res := <-reqDone
	if res.code != http.StatusOK {
		t.Fatalf("drained request status %d: %s", res.code, res.body)
	}
	if !bytes.Contains(res.body, []byte(`"status":"optimal"`)) {
		t.Fatalf("drained request body: %s", res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
}

// TestDaemonTraceDir checks the JSONL solver trace lands on disk, keyed
// and stamped by the response's trace ID.
func TestDaemonTraceDir(t *testing.T) {
	dir := t.TempDir()
	_, base := startDaemon(t, Config{MaxInFlight: 1, TraceDir: dir})
	code, body := postPlace(t, base, PlaceRequest{
		Problem: testSpec(t, 8),
		Options: RequestOptions{Merging: true, TimeLimitSec: 60},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp PlaceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "trace-"+resp.TraceID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace file has no events")
	}
	for i, e := range events {
		if e.TraceID != resp.TraceID {
			t.Fatalf("event %d trace ID %q, want %q", i, e.TraceID, resp.TraceID)
		}
	}
}

// TestDaemonRejectsBadRequests covers the 4xx paths.
func TestDaemonRejectsBadRequests(t *testing.T) {
	_, base := startDaemon(t, Config{MaxInFlight: 1})
	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"get place":       {http.MethodGet, "/v1/place", "", http.StatusMethodNotAllowed},
		"invalid json":    {http.MethodPost, "/v1/place", "{", http.StatusBadRequest},
		"missing problem": {http.MethodPost, "/v1/place", `{"options":{}}`, http.StatusBadRequest},
		"unknown option":  {http.MethodPost, "/v1/place", `{"problem":{},"options":{"bogus":1}}`, http.StatusBadRequest},
		"bad backend":     {http.MethodPost, "/v1/place", `{"problem":{"topology":{"type":"linear","switches":2,"capacity":5}},"options":{"backend":"cplex"}}`, http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
	// Health stays up throughout.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
