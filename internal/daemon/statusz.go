package daemon

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"rulefit/internal/obs"
)

// secRing is a sliding-rate counter: a ring of one-second slots,
// lazily advanced to the current second on every touch (no ticker
// goroutine). The ring is sized for the longest window it serves
// (300 slots for the 5m rate). Internal addAt/sumAt take an explicit
// second so tests drive time directly.
type secRing struct {
	mu      sync.Mutex
	slots   []int64
	lastSec int64
}

// newSecRing returns a ring of n one-second slots.
func newSecRing(n int) *secRing { return &secRing{slots: make([]int64, n)} }

// addAt adds n to the slot for the given unix second. Seconds behind
// the ring's frontier are clamped to it: an out-of-order add (clock
// hiccup, a request finishing as another advances the ring) must land
// in the current window, never in a slot a future advance will zero —
// or worse, a "future" slot that silently inflates next window's sum.
func (r *secRing) addAt(sec, n int64) {
	r.mu.Lock()
	r.advance(sec)
	if sec < r.lastSec {
		sec = r.lastSec
	}
	r.slots[sec%int64(len(r.slots))] += n
	r.mu.Unlock()
}

// advance zeroes the slots for seconds elapsed since the last touch,
// so stale contributions never leak into a window sum. Caller holds mu.
func (r *secRing) advance(sec int64) {
	if r.lastSec == 0 || sec <= r.lastSec {
		if r.lastSec == 0 {
			r.lastSec = sec //lint:sharedmut locked-section helper; every caller holds r.mu
		}
		return
	}
	gap := sec - r.lastSec
	if gap > int64(len(r.slots)) {
		gap = int64(len(r.slots))
	}
	for i := int64(1); i <= gap; i++ {
		r.slots[(r.lastSec+i)%int64(len(r.slots))] = 0
	}
	r.lastSec = sec //lint:sharedmut locked-section helper; every caller holds r.mu
}

// sumAt sums the window-many most recent slots ending at sec. The
// advance-on-read keeps an idle ring honest: slots for the elapsed gap
// are zeroed before summing, so a burst of requests followed by
// minutes of silence reads as zero, not as the stale burst. A sec
// behind the frontier reads at the frontier (same clamp as addAt).
func (r *secRing) sumAt(sec int64, window int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance(sec)
	if sec < r.lastSec {
		sec = r.lastSec
	}
	if window > len(r.slots) {
		window = len(r.slots)
	}
	var sum int64
	for i := 0; i < window; i++ {
		sum += r.slots[(sec-int64(i))%int64(len(r.slots))]
	}
	return sum
}

// statusRingSlots sizes the rate rings for the longest /statusz
// window (5 minutes of one-second slots).
const statusRingSlots = 300

// StatusSnapshot is the /statusz JSON body: instantaneous saturation
// gauges (in-flight, queue depth, configured limits) plus sliding
// 1m/5m request and shed counts and rates. All fields are
// observational; none feed back into placement.
type StatusSnapshot struct {
	InFlight    int64 `json:"in_flight"`
	QueueDepth  int64 `json:"queue_depth"`
	MaxInFlight int   `json:"max_in_flight"`
	MaxQueue    int   `json:"max_queue"`
	//lint:detsource uptime is an operational reading, not a placement input
	UptimeSec  float64 `json:"uptime_sec"`
	Requests1m int64   `json:"requests_1m"`
	Requests5m int64   `json:"requests_5m"`
	Shed1m     int64   `json:"shed_1m"`
	Shed5m     int64   `json:"shed_5m"`
	// ShedRate1m/5m are shed requests over total requests in the
	// window (0 when the window saw no requests).
	ShedRate1m float64 `json:"shed_rate_1m"`
	ShedRate5m float64 `json:"shed_rate_5m"`
	// ActiveSolves is the live-progress snapshot of every request
	// currently inside the daemon (the same data /debug/solvez serves).
	ActiveSolves []obs.ProgressSnapshot `json:"active_solves,omitempty"`
}

// statusAt assembles the snapshot for the given unix second.
func (s *Server) statusAt(sec int64, uptime time.Duration) StatusSnapshot {
	snap := StatusSnapshot{
		InFlight:    s.met.InFlight().Value(),
		QueueDepth:  s.met.QueueDepth().Value(),
		MaxInFlight: s.cfg.MaxInFlight,
		MaxQueue:    s.cfg.MaxQueue,
		//lint:detsource uptime is an operational reading, not a placement input
		UptimeSec:  uptime.Seconds(),
		Requests1m: s.reqRing.sumAt(sec, 60),
		Requests5m: s.reqRing.sumAt(sec, 300),
		Shed1m:     s.shedRing.sumAt(sec, 60),
		Shed5m:     s.shedRing.sumAt(sec, 300),
	}
	if snap.Requests1m > 0 {
		snap.ShedRate1m = float64(snap.Shed1m) / float64(snap.Requests1m)
	}
	if snap.Requests5m > 0 {
		snap.ShedRate5m = float64(snap.Shed5m) / float64(snap.Requests5m)
	}
	snap.ActiveSolves = s.solves.snapshots()
	return snap
}

// handleStatusz serves the saturation/rate snapshot as JSON.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	now := s.now()
	snap := s.statusAt(now.Unix(), now.Sub(s.started))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "statusz",
			slog.String("error", err.Error()))
	}
}
