package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/ilp"
	"rulefit/internal/obs"
	"rulefit/internal/spec"
	"rulefit/internal/state"
)

// Session API (the stateful delta path):
//
//	POST   /v1/session            create a session from a PlaceRequest
//	GET    /v1/session/{id}       current version + placement
//	POST   /v1/session/{id}/delta apply a delta batch, re-solve
//	DELETE /v1/session/{id}       drop the session
//
// Every delta answer is byte-identical to a cold /v1/place of the
// fully-updated instance (the diffcheck delta oracle enforces this);
// the session only changes how fast the answer arrives, via the
// identity/warm/cold fallback ladder in internal/state.

// DeltaRequest is the POST /v1/session/{id}/delta body.
type DeltaRequest struct {
	Deltas []spec.Delta `json:"deltas"`
}

// SessionResponse is the create/get/delta reply. Placement carries
// the same determinism contract as PlaceResponse; SessionID, Version,
// Path, Cache, and WallMS are session bookkeeping.
type SessionResponse struct {
	TraceID   string `json:"trace_id"`
	SessionID string `json:"session_id"`
	Version   uint64 `json:"version"`
	// Path is the fallback-ladder level that answered ("identity",
	// "warm", "cold"); empty on GET.
	Path string `json:"path,omitempty"`
	//lint:detsource measured latency is the point of this field
	WallMS float64 `json:"wall_ms"`
	// Cache reports the encode-cache lookups this answer consumed.
	Cache core.EncodeCacheStats `json:"cache"`
	// Solutions reports the per-policy fragment-cache lookups this
	// answer consumed (decomposed solve path only).
	Solutions core.SolutionCacheStats `json:"solutions"`
	Placement Placement               `json:"placement"`
}

// sessionDeleteResponse is the DELETE /v1/session/{id} reply.
type sessionDeleteResponse struct {
	TraceID   string `json:"trace_id"`
	SessionID string `json:"session_id"`
	Deleted   bool   `json:"deleted"`
}

// recordSessionSolve folds one session answer into the metrics.
func (s *Server) recordSessionSolve(res *state.Result) {
	s.met.RecordEncodeCache("policy", res.CacheStats.PolicyHits, res.CacheStats.PolicyMisses)
	s.met.RecordEncodeCache("merge", res.CacheStats.MergeHits, res.CacheStats.MergeMisses)
	s.met.RecordEncodeCache("solution", res.SolStats.Hits, res.SolStats.Misses)
}

// handleSessionCreate serves POST /v1/session: it parses a
// PlaceRequest, normalizes the instance to fully explicit spec form,
// runs the initial cold solve, and returns the session ID.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	traceID := obs.TraceIDFor(s.seq.Add(1), body)
	st := requestState{traceID: traceID, op: "session_create", start: start}
	if err != nil {
		st.code, st.status = http.StatusBadRequest, "bad_request"
		st.err = fmt.Errorf("reading body: %w", err)
		s.finish(w, r, st)
		return
	}
	release, ok := s.acquireSlot(r, &st)
	if !ok {
		s.finish(w, r, st)
		return
	}
	defer release()

	parseStart := time.Now()
	var req PlaceRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || len(req.Problem) == 0 {
		if err == nil {
			err = errors.New("missing problem")
		}
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	desc, err := spec.LoadBytes(req.Problem)
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	prob, err := desc.Build()
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	if err := prob.Validate(); err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	opts, err := req.Options.build(s.cfg)
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	opts.Monitors, err = desc.BuildMonitors()
	if err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	// The session's authoritative state is the explicit flattening of
	// the built instance, so generated topologies/policies delta the
	// same as hand-written ones. Monitor declarations ride along for
	// GET visibility; core-level monitors are fixed in opts.
	explicit := spec.FromCore(prob)
	explicit.Monitors = append([]spec.Monitor(nil), desc.Monitors...)
	st.parse = time.Since(parseStart)
	opts.Request = obs.NewRequestCtx(traceID)
	st.trace = opts.Request.Trace
	// ProfileLabels survives into the session's fixed opts (it is a
	// plain bool, not a per-request pointer), so every future delta
	// solve is label-attributable too. The sink and progress cell are
	// per-request: they cover the initial cold solve only.
	opts.ProfileLabels = s.cfg.ProfileThreshold > 0
	prog := &obs.Progress{}
	prog.Publish(obs.ProgressSnapshot{TraceID: traceID, Phase: "admitted", Gap: -1})
	s.solves.add(traceID, prog)
	defer s.solves.remove(traceID)
	rec := obs.NewFlightRecorder(obs.FlightOpts{Size: s.cfg.FlightEvents})
	opts.SolverSink = obs.Multi(rec, s.flight)
	defer func() {
		if p := recover(); p != nil {
			s.dumpFlight(rec, traceID, "panic")
			panic(p)
		}
	}()

	sess, res, err := s.sessions.Create(explicit, opts)
	if err != nil {
		st.code, st.status, st.err = http.StatusInternalServerError, "error", err
		if errors.Is(err, state.ErrBadDelta) {
			st.code, st.status = http.StatusBadRequest, "bad_request"
		}
		s.finish(w, r, st)
		return
	}
	if res.Placement.Stats.StopReason == ilp.StopDeadline ||
		res.Placement.Stats.StopReason == ilp.StopNodeLimit {
		s.dumpFlight(rec, traceID, res.Placement.Stats.StopReason.String())
	}
	s.met.Sessions().Set(int64(s.sessions.Len()))
	s.recordSessionSolve(res)
	st.code, st.status = http.StatusCreated, res.Placement.Status.String()
	st.placement = res.Placement
	st.body = &SessionResponse{
		TraceID:   traceID,
		SessionID: sess.ID(),
		Version:   res.Version,
		Path:      res.Path,
		Cache:     res.CacheStats,
		Solutions: res.SolStats,
		Placement: EncodePlacement(res.Placement),
	}
	s.finish(w, r, st)
}

// handleSession routes /v1/session/{id} and /v1/session/{id}/delta.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	parts := strings.Split(rest, "/")
	switch {
	case len(parts) == 1 && parts[0] != "":
		switch r.Method {
		case http.MethodGet:
			s.handleSessionGet(w, r, parts[0])
		case http.MethodDelete:
			s.handleSessionDelete(w, r, parts[0])
		default:
			w.Header().Set("Allow", "GET, DELETE")
			http.Error(w, "GET or DELETE only", http.StatusMethodNotAllowed)
		}
	case len(parts) == 2 && parts[0] != "" && parts[1] == "delta":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.handleSessionDelta(w, r, parts[0])
	default:
		http.NotFound(w, r)
	}
}

// notFoundSession fills st for an unknown/evicted session (404 with a
// trace ID, joinable with the log line).
func notFoundSession(st *requestState, err error) {
	st.code, st.status, st.err = http.StatusNotFound, "not_found", err
}

// handleSessionDelta serves POST /v1/session/{id}/delta.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request, id string) {
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	traceID := obs.TraceIDFor(s.seq.Add(1), body)
	st := requestState{traceID: traceID, op: "session_delta", start: start}
	if err != nil {
		st.code, st.status = http.StatusBadRequest, "bad_request"
		st.err = fmt.Errorf("reading body: %w", err)
		s.finish(w, r, st)
		return
	}
	release, ok := s.acquireSlot(r, &st)
	if !ok {
		s.finish(w, r, st)
		return
	}
	defer release()

	parseStart := time.Now()
	var req DeltaRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		st.code, st.status, st.err = http.StatusBadRequest, "bad_request", err
		s.finish(w, r, st)
		return
	}
	st.parse = time.Since(parseStart)
	sess, err := s.sessions.Get(id)
	if err != nil {
		notFoundSession(&st, err)
		s.finish(w, r, st)
		return
	}
	reqCtx := obs.NewRequestCtx(traceID)
	st.trace = reqCtx.Trace

	// Delta solves get the same post-mortem coverage as /v1/place: a
	// per-delta flight ring plus the global ring, dumped if the re-solve
	// dies on its budget or panics. Progress cells stay per-request
	// (stripped from session opts), so /debug/solvez shows the delta as
	// "admitted" for its whole stay.
	prog := &obs.Progress{}
	prog.Publish(obs.ProgressSnapshot{TraceID: traceID, Phase: "admitted", Gap: -1})
	s.solves.add(traceID, prog)
	defer s.solves.remove(traceID)
	rec := obs.NewFlightRecorder(obs.FlightOpts{Size: s.cfg.FlightEvents})
	defer func() {
		if p := recover(); p != nil {
			s.dumpFlight(rec, traceID, "panic")
			panic(p)
		}
	}()

	res, err := sess.Delta(req.Deltas, reqCtx, obs.Multi(rec, s.flight))
	if err != nil {
		st.code, st.status, st.err = http.StatusInternalServerError, "error", err
		if errors.Is(err, state.ErrBadDelta) {
			st.code, st.status = http.StatusBadRequest, "bad_request"
		}
		s.finish(w, r, st)
		return
	}
	if res.Placement.Stats.StopReason == ilp.StopDeadline ||
		res.Placement.Stats.StopReason == ilp.StopNodeLimit {
		s.dumpFlight(rec, traceID, res.Placement.Stats.StopReason.String())
	}
	s.met.RecordDelta(res.Path)
	s.recordSessionSolve(res)
	st.code, st.status = http.StatusOK, res.Placement.Status.String()
	st.placement = res.Placement
	st.body = &SessionResponse{
		TraceID:   traceID,
		SessionID: sess.ID(),
		Version:   res.Version,
		Path:      res.Path,
		Cache:     res.CacheStats,
		Solutions: res.SolStats,
		Placement: EncodePlacement(res.Placement),
	}
	s.finish(w, r, st)
}

// handleSessionGet serves GET /v1/session/{id}: the current version
// and placement, no solve.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request, id string) {
	traceID := obs.TraceIDFor(s.seq.Add(1), []byte(r.URL.Path))
	st := requestState{traceID: traceID, op: "session_get", start: time.Now()}
	sess, err := s.sessions.Get(id)
	if err != nil {
		notFoundSession(&st, err)
		s.finish(w, r, st)
		return
	}
	version, pl, _ := sess.Snapshot()
	st.code, st.status = http.StatusOK, pl.Status.String()
	st.body = &SessionResponse{
		TraceID:   traceID,
		SessionID: sess.ID(),
		Version:   version,
		Cache:     sess.CacheStats(),
		Solutions: sess.SolutionStats(),
		Placement: EncodePlacement(pl),
	}
	s.finish(w, r, st)
}

// handleSessionDelete serves DELETE /v1/session/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request, id string) {
	traceID := obs.TraceIDFor(s.seq.Add(1), []byte(r.URL.Path))
	st := requestState{traceID: traceID, op: "session_delete", start: time.Now()}
	if !s.sessions.Delete(id) {
		notFoundSession(&st, fmt.Errorf("%w: %s", state.ErrNoSession, id))
		s.finish(w, r, st)
		return
	}
	s.met.Sessions().Set(int64(s.sessions.Len()))
	st.code, st.status = http.StatusOK, "deleted"
	st.body = &sessionDeleteResponse{TraceID: traceID, SessionID: id, Deleted: true}
	s.finish(w, r, st)
}
