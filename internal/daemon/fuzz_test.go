package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/obs"
	"rulefit/internal/randgen"
	"rulefit/internal/spec"
	"rulefit/internal/verify"
)

// FuzzSessionDelta throws arbitrary request bodies at a live session's
// delta endpoint. The contract under fuzzing:
//
//   - the daemon never panics and never answers outside {200, 400}
//   - accepted deltas advance the session version strictly monotonically
//   - rejected deltas leave the version untouched
//   - every committed feasible placement is verify-clean against the
//     committed instance (data-plane semantics + capacities)
//
// The seed corpus in testdata/fuzz/FuzzSessionDelta covers every delta
// op against the randgen.FromSeed(5) instance (width 11, ingresses 0-1,
// switches 0-4) plus malformed bodies; coverage feedback mutates from
// there into the parser and spec.Apply edge cases.
func FuzzSessionDelta(f *testing.F) {
	for _, seed := range []string{
		`{"deltas":[{"op":"add_rule","ingress":0,"rule":{"pattern":"1**********","action":"drop","priority":9001}}]}`,
		`{"deltas":[{"op":"remove_rule","ingress":0,"priority":4}]}`,
		`{"deltas":[{"op":"set_capacity","switch":0,"capacity":5}]}`,
		`{"deltas":[{"op":"update_policy","ingress":1,"rules":[{"pattern":"***********","action":"permit","priority":1},{"pattern":"0**********","action":"drop","priority":2}]}]}`,
		`{"deltas":[{"op":"add_switch","switch":9,"capacity":3},{"op":"add_link","link":[4,9]}]}`,
		`{"deltas":[{"op":"remove_link","link":[1,3]}]}`,
		`{"deltas":[{"op":"teleport"}]}`,
		`{"deltas":[]}`,
		`not json at all`,
	} {
		f.Add([]byte(seed))
	}

	s := New(Config{MaxInFlight: 2, Logger: quietLogger(), Metrics: &obs.Metrics{}})
	if err := s.Start("127.0.0.1:0"); err != nil {
		f.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			f.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			f.Errorf("serve returned %v", err)
		}
	})
	base := "http://" + s.Addr()

	inst, err := randgen.Generate(randgen.FromSeed(5))
	if err != nil {
		f.Fatal(err)
	}
	probJSON, err := json.Marshal(spec.FromCore(inst.Problem))
	if err != nil {
		f.Fatal(err)
	}
	createBody, err := json.Marshal(PlaceRequest{
		Problem: probJSON,
		Options: RequestOptions{Merging: true, TimeLimitSec: 30},
	})
	if err != nil {
		f.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/session", "application/json", bytes.NewReader(createBody))
	if err != nil {
		f.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		f.Fatalf("create status %d: %s (%v)", resp.StatusCode, body, err)
	}
	var created SessionResponse
	if err := json.Unmarshal(body, &created); err != nil {
		f.Fatal(err)
	}
	id := created.SessionID
	lastVersion := created.Version

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("oversized body")
		}
		resp, err := http.Post(base+"/v1/session/"+id+"/delta", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}

		sess, err := s.sessions.Get(id)
		if err != nil {
			t.Fatalf("session vanished: %v", err)
		}
		switch resp.StatusCode {
		case http.StatusBadRequest:
			if v := sess.Version(); v != lastVersion {
				t.Fatalf("rejected delta moved version %d -> %d", lastVersion, v)
			}
			return
		case http.StatusOK:
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, body)
		}

		var sr SessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("bad session response: %v\n%s", err, body)
		}
		if sr.Version <= lastVersion {
			t.Fatalf("version not monotone: %d after %d", sr.Version, lastVersion)
		}
		lastVersion = sr.Version

		_, pl, spNow := sess.Snapshot()
		if pl.Status != core.StatusOptimal && pl.Status != core.StatusFeasible {
			return
		}
		prob, err := spNow.Build()
		if err != nil {
			t.Fatalf("committed spec no longer builds: %v", err)
		}
		net, err := pl.BuildTables(prob)
		if err != nil {
			t.Fatalf("committed placement deploys dirty: %v", err)
		}
		cfg := verify.Config{SamplesPerRule: 2, RandomSamples: 4, MaxViolations: 3, Seed: 1}
		if v := verify.Semantics(net, prob.Routing, prob.Policies, cfg); len(v) > 0 {
			t.Fatalf("semantics violations after delta: %v", v[0])
		}
		if v := verify.Capacities(net, prob.Network); len(v) > 0 {
			t.Fatalf("capacity violations after delta: %v", v[0])
		}
	})
}
