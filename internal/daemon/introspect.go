package daemon

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rulefit/internal/obs"
)

// This file is the daemon's solve-introspection layer:
//
//   - a registry of live solves, each publishing obs.ProgressSnapshot
//     cells that /debug/solvez (and /statusz) read lock-free;
//   - flight-recorder plumbing: every solve feeds a per-request ring
//     and the server's global always-on ring; rings are dumped as
//     JSONL (traceview-parseable) when a solve dies hard — deadline,
//     node limit, panic — on admission shed, or on demand via
//     /debug/flightz;
//   - threshold-triggered profiling: a per-request watchdog that
//     captures a CPU profile for solves outrunning
//     Config.ProfileThreshold, labeled by trace_id/phase.
//
// Everything here is observational. Placements are byte-identical
// with the whole layer on or off (TestIntrospectionNoPlacementEffect).

// solveReg tracks the progress cells of requests currently inside the
// daemon. Registration is cheap (one map insert per request); reads
// copy the latest snapshot of each cell without blocking writers.
type solveReg struct {
	mu    sync.Mutex
	cells map[string]*obs.Progress
}

func newSolveReg() *solveReg {
	return &solveReg{cells: make(map[string]*obs.Progress)}
}

// add registers a request's progress cell under its trace ID.
func (g *solveReg) add(traceID string, p *obs.Progress) {
	g.mu.Lock()
	g.cells[traceID] = p
	g.mu.Unlock()
}

// remove deregisters a finished request.
func (g *solveReg) remove(traceID string) {
	g.mu.Lock()
	delete(g.cells, traceID)
	g.mu.Unlock()
}

// snapshots returns the latest snapshot of every live cell, sorted by
// trace ID so the JSON is stable for tests and scrapes.
func (g *solveReg) snapshots() []obs.ProgressSnapshot {
	g.mu.Lock()
	out := make([]obs.ProgressSnapshot, 0, len(g.cells))
	for _, p := range g.cells { //lint:mapdet output is sorted by trace ID below
		if snap, ok := p.Snapshot(); ok {
			out = append(out, snap)
		}
	}
	g.mu.Unlock()
	if len(out) == 0 {
		return nil // keep idle /statusz snapshots field-free (omitempty)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TraceID < out[j].TraceID })
	return out
}

// solvezResponse is the /debug/solvez JSON body.
type solvezResponse struct {
	Count  int                    `json:"count"`
	Active []obs.ProgressSnapshot `json:"active"`
}

// handleSolvez serves /debug/solvez: one snapshot per request
// currently inside the daemon (queued, solving, or finishing), newest
// state of each. Empty list when idle.
func (s *Server) handleSolvez(w http.ResponseWriter, _ *http.Request) {
	snaps := s.solves.snapshots()
	if snaps == nil {
		snaps = []obs.ProgressSnapshot{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(solvezResponse{Count: len(snaps), Active: snaps}); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "solvez",
			slog.String("error", err.Error()))
	}
}

// handleFlightz serves /debug/flightz: the global flight ring dumped
// as JSONL, on demand. The dump is the tail of recent solver events
// across all requests (each event carries its trace_id), headed by a
// flight_meta line with the loss accounting — exactly the format
// obs/traceview summarizes.
func (s *Server) handleFlightz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	if err := s.flight.Dump().WriteJSONL(w); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "flightz",
			slog.String("error", err.Error()))
	}
}

// dumpFlight writes a recorder's ring to <FlightDir>/flight-<name>.jsonl.
// Called when a solve ends in a state worth a post-mortem (deadline,
// node limit, panic) or when admission sheds. No-op without a
// FlightDir; failures are logged, never surfaced to the client.
func (s *Server) dumpFlight(rec *obs.FlightRecorder, name, reason string) {
	if s.cfg.FlightDir == "" || rec == nil {
		return
	}
	path := filepath.Join(s.cfg.FlightDir, "flight-"+name+".jsonl")
	d := rec.Dump()
	f, err := os.Create(path)
	if err == nil {
		err = d.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "flight_dump",
			slog.String("trace_id", name), slog.String("error", err.Error()))
		return
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "flight_dump",
		slog.String("trace_id", name), slog.String("reason", reason),
		slog.String("path", path), slog.Int("events", len(d.Events)),
		slog.Uint64("seen", d.Seen), slog.Uint64("dropped", d.Dropped))
}

// dumpOnShed dumps the global ring when admission sheds a request, at
// most once per second — a shed storm must not turn into a disk storm.
func (s *Server) dumpOnShed(traceID string) {
	if s.cfg.FlightDir == "" {
		return
	}
	sec := s.now().Unix()
	last := s.shedDumpSec.Load()
	if last == sec || !s.shedDumpSec.CompareAndSwap(last, sec) {
		return
	}
	s.dumpFlight(s.flight, "shed-"+traceID, "shed")
}

// cpuProfileActive guards the one CPU profile the runtime allows per
// process: whichever slow solve trips its watchdog first wins; the
// rest skip quietly and their wall time still lands in the phase
// histograms.
var cpuProfileActive atomic.Bool

// profWatch is one request's profiling watchdog. The timer callback
// and the stop path race by construction (a solve can finish exactly
// at the threshold), so both run under mu.
type profWatch struct {
	timer *time.Timer
	mu    sync.Mutex
	file  *os.File
	armed bool // profile running, owned by this watch
	done  bool // stop() ran; a late timer fire must do nothing
}

// watchProfile arms a watchdog: if the request is still running after
// cfg.ProfileThreshold, a CPU profile starts and runs until the solve
// ends, written as <ProfileDir>/profile-<trace_id>.pprof. The returned
// stop must be deferred by the caller. Zero threshold or empty
// ProfileDir disables the watchdog entirely.
func (s *Server) watchProfile(traceID string) (stop func()) {
	if s.cfg.ProfileThreshold <= 0 || s.cfg.ProfileDir == "" {
		return func() {}
	}
	w := &profWatch{}
	w.timer = time.AfterFunc(s.cfg.ProfileThreshold, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.done {
			return
		}
		if !cpuProfileActive.CompareAndSwap(false, true) {
			return // someone else's profile is running
		}
		path := filepath.Join(s.cfg.ProfileDir, "profile-"+traceID+".pprof")
		f, err := os.Create(path)
		if err != nil {
			cpuProfileActive.Store(false)
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "profile_start",
				slog.String("trace_id", traceID), slog.String("error", err.Error()))
			return
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(path)
			cpuProfileActive.Store(false)
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "profile_start",
				slog.String("trace_id", traceID), slog.String("error", err.Error()))
			return
		}
		w.file = f
		w.armed = true
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "profile_started",
			slog.String("trace_id", traceID), slog.String("path", path))
	})
	return func() {
		w.timer.Stop()
		w.mu.Lock()
		defer w.mu.Unlock()
		w.done = true
		if !w.armed {
			return
		}
		pprof.StopCPUProfile()
		if err := w.file.Close(); err != nil {
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "profile_close",
				slog.String("trace_id", traceID), slog.String("error", err.Error()))
		}
		w.armed = false
		cpuProfileActive.Store(false)
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "profile_done",
			slog.String("trace_id", traceID))
	}
}
