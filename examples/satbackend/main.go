// Satbackend: the same placement problem solved by both formulations —
// the ILP encoding (Eqs. 1–5) and the satisfiability/pseudo-Boolean
// encoding (Eqs. 6–8) — demonstrating that the two agree on feasibility
// and on the optimum, and comparing their runtime characters. The SAT
// backend is also run in pure satisfiability mode, the paper's fast
// path for urgent security updates.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rulefit"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("satbackend:", err)
		os.Exit(1)
	}
}

func run() error {
	topo, err := rulefit.FatTree(4, 30, 2)
	if err != nil {
		return err
	}
	pairs, err := rulefit.SpreadPairs(topo, 6, 6, 3)
	if err != nil {
		return err
	}
	rt, err := rulefit.BuildRouting(topo, pairs, 4)
	if err != nil {
		return err
	}
	var policies []*rulefit.Policy
	for _, in := range rt.Ingresses() {
		policies = append(policies, rulefit.GeneratePolicy(int(in), rulefit.GenConfig{NumRules: 12, Seed: 9}))
	}
	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: policies}

	type runRes struct {
		name  string
		pl    *rulefit.Placement
		taken time.Duration
	}
	var results []runRes
	for _, mode := range []struct {
		name string
		opts rulefit.Options
	}{
		{"ILP optimize", rulefit.Options{Backend: rulefit.BackendILP}},
		{"SAT optimize", rulefit.Options{Backend: rulefit.BackendSAT}},
		{"SAT satisfy-only", rulefit.Options{Backend: rulefit.BackendSAT, SatisfyOnly: true}},
		{"ILP satisfy-only", rulefit.Options{Backend: rulefit.BackendILP, SatisfyOnly: true}},
	} {
		mode.opts.TimeLimit = 120 * time.Second
		start := time.Now()
		pl, err := rulefit.Place(prob, mode.opts)
		if err != nil {
			return err
		}
		results = append(results, runRes{mode.name, pl, time.Since(start)})
	}

	fmt.Printf("%-18s | %-10s | %-11s | %-10s\n", "mode", "status", "total rules", "time")
	fmt.Println("-------------------+------------+-------------+-----------")
	for _, r := range results {
		rules := "-"
		if r.pl.Status == rulefit.StatusOptimal || r.pl.Status == rulefit.StatusFeasible {
			rules = fmt.Sprintf("%d", r.pl.TotalRules)
		}
		fmt.Printf("%-18s | %-10v | %-11s | %-10v\n", r.name, r.pl.Status, rules, r.taken.Round(time.Millisecond))
	}

	ilpOpt, satOpt := results[0].pl, results[1].pl
	if ilpOpt.Status == rulefit.StatusOptimal && satOpt.Status == rulefit.StatusOptimal {
		if ilpOpt.TotalRules != satOpt.TotalRules {
			return fmt.Errorf("backends disagree: ILP %d vs SAT %d", ilpOpt.TotalRules, satOpt.TotalRules)
		}
		fmt.Printf("\nboth exact backends prove the same optimum: %d rules\n", ilpOpt.TotalRules)
	}

	// The satisfy-only placements are valid even if not optimal.
	for _, r := range results[2:] {
		if r.pl.Status != rulefit.StatusOptimal && r.pl.Status != rulefit.StatusFeasible {
			continue
		}
		tables, err := r.pl.BuildTables(prob)
		if err != nil {
			return err
		}
		if v := rulefit.VerifySemantics(tables, rt, r.pl.Policies, rulefit.VerifyConfig{Seed: 2, SamplesPerRule: 2, RandomSamples: 8}); len(v) > 0 {
			return fmt.Errorf("%s: semantics violated: %v", r.name, v)
		}
	}
	fmt.Println("satisfy-only placements verified; they trade optimality for solve speed (§IV-E).")
	return nil
}
