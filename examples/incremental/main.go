// Incremental: the network is already running a solved placement; a new
// tenant arrives and a routing change hits an existing tenant. Both
// updates are handled incrementally (§IV-E) against the spare TCAM
// capacity, without disturbing any installed rule, and the update
// latency is compared against a full from-scratch re-solve.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rulefit"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("incremental:", err)
		os.Exit(1)
	}
}

func run() error {
	topo, err := rulefit.FatTree(4, 40, 2)
	if err != nil {
		return err
	}
	pairs, err := rulefit.SpreadPairs(topo, 8, 6, 31)
	if err != nil {
		return err
	}
	rt, err := rulefit.BuildRouting(topo, pairs, 32)
	if err != nil {
		return err
	}
	var policies []*rulefit.Policy
	for _, in := range rt.Ingresses() {
		policies = append(policies, rulefit.GeneratePolicy(int(in), rulefit.GenConfig{NumRules: 15, Seed: 41}))
	}
	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: policies}

	start := time.Now()
	base, err := rulefit.Place(prob, rulefit.Options{TimeLimit: 120 * time.Second})
	if err != nil {
		return err
	}
	baseTime := time.Since(start)
	if base.Status != rulefit.StatusOptimal && base.Status != rulefit.StatusFeasible {
		return fmt.Errorf("base placement %v", base.Status)
	}
	fmt.Printf("initial placement: %v, %d rules, %v\n", base.Status, base.TotalRules, baseTime.Round(time.Millisecond))

	spare := rulefit.SpareCapacities(prob, base)
	total := 0
	for _, v := range spare {
		total += v
	}
	fmt.Printf("spare capacity across the fabric: %d slots\n\n", total)

	// --- Update 1: a new tenant arrives at a fresh ingress port. ---
	newTopo := topo.Clone()
	const newPort = rulefit.PortID(500)
	edge := topo.IngressPorts()[0].Switch
	if err := newTopo.AddPort(rulefit.ExternalPort{ID: newPort, Switch: edge, Ingress: true}); err != nil {
		return err
	}
	out := topo.EgressPorts()[len(topo.EgressPorts())-1]
	sw, err := rulefit.ShortestPath(newTopo, edge, out.Switch)
	if err != nil {
		return err
	}
	newRt := rulefit.NewRouting()
	newRt.Add(rulefit.Path{Ingress: newPort, Egress: out.ID, Switches: sw})
	newPol := rulefit.GeneratePolicy(int(newPort), rulefit.GenConfig{NumRules: 12, Seed: 77})

	probWithPort := &rulefit.Problem{Network: newTopo, Routing: rt, Policies: policies}
	start = time.Now()
	inc, err := rulefit.IncrementalAdd(probWithPort, base, []*rulefit.Policy{newPol}, newRt, rulefit.Options{})
	if err != nil {
		return err
	}
	incTime := time.Since(start)
	speedup := float64(baseTime) / float64(maxDur(incTime, time.Microsecond))
	fmt.Printf("tenant install (12 rules, 1 path): %v in %v — %.0fx faster than the base solve\n",
		inc.Status, incTime.Round(time.Microsecond), speedup)

	// --- Update 2: reroute an existing tenant onto fewer paths. ---
	victim := policies[0]
	old := rt.Sets[rulefit.PortID(victim.Ingress)]
	newSet := &rulefit.PathSet{Ingress: rulefit.PortID(victim.Ingress), Paths: old.Paths[:len(old.Paths)-2]}
	start = time.Now()
	re, err := rulefit.IncrementalReroute(prob, base, victim.Ingress, newSet, rulefit.Options{})
	if err != nil {
		return err
	}
	reTime := time.Since(start)
	fmt.Printf("reroute tenant %d (%d -> %d paths):  %v in %v\n",
		victim.Ingress, len(old.Paths), len(newSet.Paths), re.Status, reTime.Round(time.Microsecond))

	// --- Compare: full re-solve from scratch. ---
	start = time.Now()
	if _, err := rulefit.Place(prob, rulefit.Options{TimeLimit: 120 * time.Second}); err != nil {
		return err
	}
	fmt.Printf("\nfull re-solve for comparison: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("incremental updates run in a fraction of the from-scratch time, as §IV-E intends.")
	return nil
}

// maxDur returns the larger duration (guards division by zero).
func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
