// Extensions: the placement criteria beyond total rule count that the
// paper names but does not evaluate — traffic-aware placement (§IV-A4),
// weighted switches, table-slack balancing ("slack in table capacity"),
// and the §VII future-work monitoring constraint. One linear fabric, one
// policy, four placements; the drop rule lands somewhere different each
// time, for a different reason.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rulefit"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("extensions:", err)
		os.Exit(1)
	}
}

func run() error {
	// A chain of five switches: ingress at s0, egress after s4.
	topo, err := rulefit.Linear(5, 4)
	if err != nil {
		return err
	}
	rt, err := rulefit.BuildRouting(topo, []rulefit.PortPair{{In: 0, Out: 1}}, 1)
	if err != nil {
		return err
	}
	// One blocked prefix plus a permitted exception inside it.
	blocked := rulefit.FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 8, ProtoAny: true}
	allowed := rulefit.FiveTuple{SrcIP: 0x0A010000, SrcPfxLen: 16, ProtoAny: true}
	pol, err := rulefit.NewPolicy(0, []rulefit.Rule{
		{Match: allowed.Ternary(), Action: rulefit.Permit, Priority: 2},
		{Match: blocked.Ternary(), Action: rulefit.Drop, Priority: 1},
	})
	if err != nil {
		return err
	}
	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: []*rulefit.Policy{pol}}

	show := func(name string, opts rulefit.Options) error {
		opts.TimeLimit = 30 * time.Second
		pl, err := rulefit.Place(prob, opts)
		if err != nil {
			return err
		}
		if pl.Status != rulefit.StatusOptimal {
			return fmt.Errorf("%s: %v", name, pl.Status)
		}
		dropAt := pl.Assign[0][1]
		extra := ""
		if opts.Objective == rulefit.ObjMinMaxLoad {
			extra = fmt.Sprintf("  (max load %.0f%%)", 100*pl.MaxLoad)
		}
		fmt.Printf("%-22s -> drop rule at switch %v, %d rules total%s\n", name, dropAt, pl.TotalRules, extra)
		return nil
	}

	fmt.Println("placing src=10.0.0.0/8 DROP (with its PERMIT exception) on a 5-switch chain:")
	// 1. Traffic objective: kill unwanted packets at the ingress.
	if err := show("traffic-aware", rulefit.Options{Objective: rulefit.ObjTraffic}); err != nil {
		return err
	}
	// 2. Weighted switches: the ingress TCAM is precious, core is cheap.
	cost := map[rulefit.SwitchID]int64{0: 50, 1: 20, 2: 1, 3: 1, 4: 1}
	if err := show("weighted-switches", rulefit.Options{
		Objective:  rulefit.ObjWeightedSwitches,
		SwitchCost: cost,
	}); err != nil {
		return err
	}
	// 3. Monitoring: an IDS tap at s2 must see the 10/8 traffic before
	// the firewall kills it.
	mon := rulefit.Monitor{Switch: 2, Match: blocked.Ternary()}
	if err := show("monitor at s2", rulefit.Options{
		Objective: rulefit.ObjTraffic,
		Monitors:  []rulefit.Monitor{mon},
	}); err != nil {
		return err
	}
	// 4. Min-max load: spread usage evenly across the chain.
	if err := show("min-max load", rulefit.Options{Objective: rulefit.ObjMinMaxLoad}); err != nil {
		return err
	}
	fmt.Println("\nsame policy, four placement policies — the engine optimizes whichever the operator picks.")
	return nil
}
