// Datacenter: a multi-tenant fat-tree where every tenant attaches a
// firewall policy at its ingress and the operator adds a network-wide
// blacklist. The example contrasts placement with and without
// cross-policy rule merging (§IV-B) and with the naive
// replicate-everywhere strategy, then sweeps switch capacity to show
// the duplication overhead shrinking as TCAMs grow (Table II's effect).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rulefit"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("datacenter:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		k        = 4
		tenants  = 6
		rules    = 10
		paths    = 4
		mergeful = 4 // shared blacklist entries
	)
	topo, err := rulefit.FatTree(k, 0, 2)
	if err != nil {
		return err
	}
	pairs, err := rulefit.SpreadPairs(topo, tenants, paths, 11)
	if err != nil {
		return err
	}
	rt, err := rulefit.BuildRouting(topo, pairs, 12)
	if err != nil {
		return err
	}

	// Tenant policies plus the operator blacklist at top priority.
	blacklist := rulefit.GenerateBlacklist(mergeful, 99)
	var policies []*rulefit.Policy
	for _, in := range rt.Ingresses() {
		pol := rulefit.GeneratePolicy(int(in), rulefit.GenConfig{NumRules: rules, Seed: 21})
		policies = append(policies, rulefit.WithBlacklist(pol, blacklist))
	}
	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: policies}

	fmt.Printf("fat-tree k=%d: %d switches, %d tenants x %d rules (+%d shared blacklist), %d paths\n\n",
		k, topo.NumSwitches(), tenants, rules, mergeful, rt.NumPaths())
	fmt.Printf("%-10s | %-12s | %-12s | %-14s\n", "capacity", "no merging", "with merging", "replicate p x r")
	fmt.Println("-----------+--------------+--------------+----------------")

	for _, capacity := range []int{8, 10, 14, 20, 40} {
		topo.SetCapacity(capacity)

		plain, err := rulefit.Place(prob, rulefit.Options{TimeLimit: 60 * time.Second})
		if err != nil {
			return err
		}
		merged, err := rulefit.Place(prob, rulefit.Options{Merging: true, TimeLimit: 60 * time.Second})
		if err != nil {
			return err
		}
		repl, err := rulefit.ReplicateEverywhere(prob, rulefit.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-10d | %-12s | %-12s | %-14d\n",
			capacity, cellOf(plain), cellOf(merged), repl.TotalRules)

		// Sanity: whenever a placement exists, it must verify.
		if merged.Status == rulefit.StatusOptimal || merged.Status == rulefit.StatusFeasible {
			tables, err := merged.BuildTables(prob)
			if err != nil {
				return err
			}
			if v := rulefit.VerifySemantics(tables, rt, merged.Policies, rulefit.VerifyConfig{Seed: 5, SamplesPerRule: 2, RandomSamples: 8}); len(v) > 0 {
				return fmt.Errorf("capacity %d: semantics violated: %v", capacity, v)
			}
		}
	}
	fmt.Println("\nmerging installs the shared blacklist once per switch instead of once per tenant;")
	fmt.Println("tight capacities become feasible and the optimizer stays far below the p x r bound.")
	return nil
}

// cellOf renders one result cell.
func cellOf(pl *rulefit.Placement) string {
	switch pl.Status {
	case rulefit.StatusOptimal:
		return fmt.Sprintf("%d", pl.TotalRules)
	case rulefit.StatusFeasible:
		return fmt.Sprintf("%d*", pl.TotalRules)
	default:
		return "Inf"
	}
}
