// Quickstart: place the paper's running example (Fig. 3) and print the
// compiled per-switch TCAM tables.
//
// The network has one ingress l1 at s1 and two routes, s1-s2-s3 (to l2)
// and s1-s2-s4-s5 (to l3). The ingress policy permits a narrow flow,
// drops the wider block around it, and drops another disjoint block.
// The optimizer shares rules on the common prefix s1-s2 when capacity
// allows and replicates across branches when it does not.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"rulefit"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The Fig. 3 network with 2 TCAM slots per switch — tight enough
	// that the placement has to think.
	topo := rulefit.Fig3(2)
	rt, err := rulefit.BuildRouting(topo, []rulefit.PortPair{{In: 1, Out: 2}, {In: 1, Out: 3}}, 1)
	if err != nil {
		return err
	}

	// The ingress policy: a permitted management flow inside a dropped
	// block, plus a blanket drop of another range.
	permit := rulefit.Rule{Match: mustTernary("1100****"), Action: rulefit.Permit, Priority: 3}
	dropWide := rulefit.Rule{Match: mustTernary("11******"), Action: rulefit.Drop, Priority: 2}
	dropOther := rulefit.Rule{Match: mustTernary("00******"), Action: rulefit.Drop, Priority: 1}
	pol, err := rulefit.NewPolicy(1, []rulefit.Rule{permit, dropWide, dropOther})
	if err != nil {
		return err
	}

	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: []*rulefit.Policy{pol}}
	pl, err := rulefit.Place(prob, rulefit.Options{TimeLimit: 30 * time.Second})
	if err != nil {
		return err
	}
	fmt.Printf("status: %v, total rules installed: %d\n\n", pl.Status, pl.TotalRules)

	tables, err := pl.BuildTables(prob)
	if err != nil {
		return err
	}
	ids := make([]int, 0, len(tables.Tables))
	for id := range tables.Tables {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Print(tables.Tables[rulefit.SwitchID(id)])
	}

	// Prove the deployment drops exactly what the policy drops.
	if v := rulefit.VerifyExhaustive(tables, rt, pl.Policies); len(v) > 0 {
		return fmt.Errorf("verification failed: %v", v)
	}
	fmt.Println("\nverified: deployed tables preserve the policy on every header and path")
	return nil
}

// mustTernary parses an 8-bit match pattern for the demo policy.
func mustTernary(pattern string) rulefit.TernaryMatch {
	m, err := rulefit.ParseTernary(pattern)
	if err != nil {
		panic(err)
	}
	return m
}
