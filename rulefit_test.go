package rulefit_test

import (
	"testing"
	"time"

	"rulefit"
)

// TestPublicAPIWorkflow walks the full documented workflow through the
// public facade: topology, routing, policies, placement, tables,
// verification, spare capacity, and incremental installation.
func TestPublicAPIWorkflow(t *testing.T) {
	topo, err := rulefit.FatTree(4, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := rulefit.SpreadPairs(topo, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rulefit.BuildRouting(topo, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var policies []*rulefit.Policy
	for _, in := range rt.Ingresses() {
		policies = append(policies, rulefit.GeneratePolicy(int(in), rulefit.GenConfig{NumRules: 10, Seed: 3}))
	}
	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: policies}

	pl, err := rulefit.Place(prob, rulefit.Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Status != rulefit.StatusOptimal {
		t.Fatalf("status = %v", pl.Status)
	}
	tables, err := pl.BuildTables(prob)
	if err != nil {
		t.Fatal(err)
	}
	if v := rulefit.VerifySemantics(tables, rt, pl.Policies, rulefit.VerifyConfig{Seed: 1}); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if v := rulefit.VerifyCapacities(tables, topo); len(v) > 0 {
		t.Fatalf("capacity violations: %v", v)
	}

	spare := rulefit.SpareCapacities(prob, pl)
	if len(spare) != topo.NumSwitches() {
		t.Fatalf("spare map covers %d switches, want %d", len(spare), topo.NumSwitches())
	}

	// Baselines bracket the optimum.
	greedy, err := rulefit.GreedyPlace(prob, rulefit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Status == rulefit.StatusFeasible && greedy.TotalRules < pl.TotalRules {
		t.Fatalf("greedy (%d) beat the proven optimum (%d)", greedy.TotalRules, pl.TotalRules)
	}
	repl, err := rulefit.ReplicateEverywhere(prob, rulefit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repl.TotalRules < pl.TotalRules {
		t.Fatalf("replication (%d) beat the optimum (%d)", repl.TotalRules, pl.TotalRules)
	}
	if bound := rulefit.PXRBound(prob); repl.TotalRules > bound {
		t.Fatalf("replication (%d) above the p x r bound (%d)", repl.TotalRules, bound)
	}
}

// TestPublicAPIBackendsAgree checks both solver backends prove the same
// optimum through the facade.
func TestPublicAPIBackendsAgree(t *testing.T) {
	topo := rulefit.Fig3(4)
	rt, err := rulefit.BuildRouting(topo, []rulefit.PortPair{{In: 1, Out: 2}, {In: 1, Out: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := rulefit.NewPolicy(1, []rulefit.Rule{
		{Match: rulefit.MustParseTernary("1100****"), Action: rulefit.Permit, Priority: 3},
		{Match: rulefit.MustParseTernary("11******"), Action: rulefit.Drop, Priority: 2},
		{Match: rulefit.MustParseTernary("00******"), Action: rulefit.Drop, Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	prob := &rulefit.Problem{Network: topo, Routing: rt, Policies: []*rulefit.Policy{pol}}

	ilpPl, err := rulefit.Place(prob, rulefit.Options{Backend: rulefit.BackendILP, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	satPl, err := rulefit.Place(prob, rulefit.Options{Backend: rulefit.BackendSAT, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if ilpPl.Status != rulefit.StatusOptimal || satPl.Status != rulefit.StatusOptimal {
		t.Fatalf("statuses: %v, %v", ilpPl.Status, satPl.Status)
	}
	if ilpPl.TotalRules != satPl.TotalRules {
		t.Fatalf("optima differ: %d vs %d", ilpPl.TotalRules, satPl.TotalRules)
	}
}

// TestPublicAPIMatchHelpers exercises the re-exported match utilities.
func TestPublicAPIMatchHelpers(t *testing.T) {
	ft := rulefit.FiveTuple{SrcIP: 0x0A000000, SrcPfxLen: 8, ProtoAny: true}
	tn := ft.Ternary()
	if tn.Width() != rulefit.HeaderWidth {
		t.Fatalf("width = %d", tn.Width())
	}
	h := rulefit.Header{SrcIP: 0x0A010203}
	if !tn.MatchesWords(h.Words()) {
		t.Error("10.x header should match 10/8 source prefix")
	}
	if rulefit.DstPrefixTernary(0x0B000000, 8).Overlaps(tn) == false {
		t.Error("independent src/dst constraints must overlap")
	}
}
