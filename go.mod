module rulefit

go 1.22
