// Command benchgen emits synthetic benchmark problem descriptions (JSON)
// in the style of the paper's evaluation: a fat-tree topology, spread
// ingress/egress pairs routed by seeded random shortest paths, and one
// generated ClassBench-style policy per ingress.
//
// Usage:
//
//	benchgen [-k 4] [-capacity 100] [-hosts 2] [-ingresses 8]
//	         [-paths-per-ingress 8] [-rules 20] [-seed 1] [-out problem.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rulefit/internal/routing"
	"rulefit/internal/spec"
	"rulefit/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		k        = flag.Int("k", 4, "fat-tree arity (even)")
		capacity = flag.Int("capacity", 100, "per-switch rule capacity")
		hosts    = flag.Int("hosts", 2, "external ports per edge switch")
		ingress  = flag.Int("ingresses", 8, "number of ingress ports with policies")
		ppi      = flag.Int("paths-per-ingress", 8, "paths per ingress")
		rules    = flag.Int("rules", 20, "rules per policy")
		seed     = flag.Int64("seed", 1, "generation seed")
		outPath  = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	// Materialize the port pairs so the emitted file is self-contained
	// and reproducible independent of generator internals.
	topo, err := topology.FatTree(*k, *capacity, *hosts)
	if err != nil {
		return err
	}
	pairs, err := routing.SpreadPairs(topo, *ingress, *ppi, *seed)
	if err != nil {
		return err
	}

	desc := &spec.Problem{
		Topology: spec.Topology{Type: "fattree", K: *k, Capacity: *capacity, Hosts: *hosts},
		Routing:  spec.Routing{Seed: *seed + 1},
	}
	seenIngress := map[int]bool{}
	for _, p := range pairs {
		desc.Routing.Pairs = append(desc.Routing.Pairs, spec.Pair{In: int(p.In), Out: int(p.Out)})
		if !seenIngress[int(p.In)] {
			seenIngress[int(p.In)] = true
			desc.Policies = append(desc.Policies, spec.Policy{
				Ingress:  int(p.In),
				Generate: &spec.Gen{NumRules: *rules, Seed: *seed},
			})
		}
	}

	var w io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return desc.Save(w)
}
