// Command ruleplace reads a placement problem description (JSON), solves
// it, and prints the placement: status, rule totals, per-switch usage,
// and optionally the full compiled TCAM tables.
//
// Usage:
//
//	ruleplace -in problem.json [-backend ilp|sat] [-objective rules|traffic]
//	          [-merge] [-slice] [-redundancy] [-satisfy] [-tables] [-verify]
//	          [-timeout 60s] [-trace out.jsonl] [-metrics] [-pprof :6060]
//	          [-flight out.jsonl] [-flight-events N]
//
// -trace writes the solver's structured event stream (node expansions,
// prunes, incumbents, bound gap) as JSONL and prints a search summary.
// -flight instead retains only the tail of the stream in a fixed-size
// ring (-flight-events, default 4096) and dumps it after the solve —
// the same bounded-memory recorder the daemon keeps always-on; useful
// for solves whose full trace would be gigabytes.
// -metrics prints the pipeline phase spans and Prometheus-text counters
// after the run. -pprof serves net/http/pprof plus /metrics on the given
// address for the duration of the solve.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/obs"
	"rulefit/internal/obs/traceview"
	"rulefit/internal/spec"
	"rulefit/internal/topology"
	"rulefit/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ruleplace:", err)
		os.Exit(1)
	}
}

// servePprof exposes net/http/pprof (via the default mux) plus the
// process-wide solver counters at /metrics, for profiling long solves.
func servePprof(addr string) {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := obs.Default.WritePrometheus(w); err != nil {
			fmt.Fprintln(os.Stderr, "ruleplace: /metrics:", err)
		}
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "ruleplace: pprof server:", err)
		}
	}()
}

func run() error {
	var (
		inPath     = flag.String("in", "", "problem description JSON (required)")
		backend    = flag.String("backend", "ilp", "solver backend: ilp or sat")
		objective  = flag.String("objective", "rules", "objective: rules, traffic, weighted, or minmaxload")
		merge      = flag.Bool("merge", false, "enable cross-policy rule merging")
		slice      = flag.Bool("slice", false, "enable path-sliced policies (needs traffic slices)")
		redundancy = flag.Bool("redundancy", false, "remove redundant rules first")
		satisfy    = flag.Bool("satisfy", false, "skip optimization; find any valid placement")
		tables     = flag.Bool("tables", false, "print compiled per-switch tables")
		doVerify   = flag.Bool("verify", true, "verify placement semantics by sampling")
		timeout    = flag.Duration("timeout", 120*time.Second, "solver time limit")
		smtOut     = flag.String("smtlib", "", "also dump the SMT-LIB 2 encoding to this file")
		traceOut   = flag.String("trace", "", "write the solver event stream (JSONL) to this file")
		flightOut  = flag.String("flight", "", "write a flight-recorder ring dump (tail of the event stream, JSONL) to this file")
		flightSize = flag.Int("flight-events", 0, "flight ring size in events (0 = 4096)")
		metrics    = flag.Bool("metrics", false, "print phase spans and Prometheus counters after the run")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}
	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}
	var spanTrace *obs.Trace
	if *metrics {
		spanTrace = obs.NewTrace()
		// Printed on exit so the tree includes the post-solve phases
		// (table compilation, verification).
		defer func() {
			fmt.Print(spanTrace.Render())
			if err := obs.Default.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "ruleplace: metrics:", err)
			}
		}()
	}

	parseSp := spanTrace.Span("parse")
	desc, err := spec.LoadFile(*inPath)
	if err != nil {
		return err
	}
	prob, err := desc.Build()
	if err != nil {
		return err
	}
	parseSp.SetCount("policies", int64(len(prob.Policies)))
	parseSp.End()

	monitors, err := desc.BuildMonitors()
	if err != nil {
		return err
	}
	opts := core.Options{
		Merging:         *merge,
		PathSlicing:     *slice,
		RemoveRedundant: *redundancy,
		SatisfyOnly:     *satisfy,
		TimeLimit:       *timeout,
		Monitors:        monitors,
	}
	var (
		rec       obs.Recorder
		traceFile *os.File
		traceJW   *obs.JSONLWriter
	)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		traceJW = obs.NewJSONLWriter(f)
		opts.SolverSink = obs.Multi(&rec, traceJW)
	}
	var flightRec *obs.FlightRecorder
	if *flightOut != "" {
		flightRec = obs.NewFlightRecorder(obs.FlightOpts{Size: *flightSize})
		opts.SolverSink = obs.Multi(opts.SolverSink, flightRec)
	}
	opts.Trace = spanTrace
	switch *backend {
	case "ilp":
		opts.Backend = core.BackendILP
	case "sat":
		opts.Backend = core.BackendSAT
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}
	switch *objective {
	case "rules":
		opts.Objective = core.ObjTotalRules
	case "traffic":
		opts.Objective = core.ObjTraffic
	case "weighted":
		opts.Objective = core.ObjWeightedSwitches
	case "minmaxload":
		opts.Objective = core.ObjMinMaxLoad
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	if *smtOut != "" {
		f, err := os.Create(*smtOut)
		if err != nil {
			return err
		}
		if err := core.WriteSMTLIB(f, prob, opts, !*satisfy); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("smt-lib script written to %s\n", *smtOut)
	}

	start := time.Now()
	pl, err := core.Place(prob, opts)
	if err != nil {
		return err
	}
	if traceFile != nil {
		if err := traceJW.Flush(); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		sum := traceview.Of(rec.Events())
		fmt.Printf("trace       : %d events -> %s\n", sum.Events, *traceOut)
		fmt.Print(sum.Render())
		if err := sum.Check(); err != nil {
			return fmt.Errorf("trace self-check: %w", err)
		}
	}
	if flightRec != nil {
		d := flightRec.Dump()
		f, err := os.Create(*flightOut)
		if err != nil {
			return err
		}
		if err := d.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("flight      : %d of %d events retained (%d dropped, %d sampled) -> %s\n",
			len(d.Events), d.Seen, d.Dropped, d.Sampled, *flightOut)
	}
	fmt.Printf("status      : %v\n", pl.Status)
	fmt.Printf("solve time  : %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("variables   : %d\n", pl.Stats.Variables)
	fmt.Printf("constraints : %d\n", pl.Stats.Constraints)
	if pl.Status != core.StatusOptimal && pl.Status != core.StatusFeasible {
		return nil
	}
	fmt.Printf("total rules : %d\n", pl.TotalRules)
	fmt.Printf("objective   : %g\n", pl.Objective)
	if opts.Objective == core.ObjMinMaxLoad {
		fmt.Printf("max load    : %.1f%%\n", 100*pl.MaxLoad)
	}

	tablesSp := spanTrace.Span("tables")
	net, err := pl.BuildTables(prob)
	if err != nil {
		return err
	}
	tablesSp.SetCount("switches", int64(len(net.Tables)))
	tablesSp.End()
	// Per-switch usage summary.
	ids := make([]topology.SwitchID, 0, len(net.Tables))
	for id := range net.Tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	fmt.Println("per-switch usage:")
	for _, id := range ids {
		sw, _ := prob.Network.Switch(id)
		fmt.Printf("  switch %4d: %4d / %d\n", id, net.Tables[id].Size(), sw.Capacity)
	}
	if *tables {
		for _, id := range ids {
			fmt.Print(net.Tables[id])
		}
	}
	if *doVerify {
		verifySp := spanTrace.Span("verify")
		viol := verify.Semantics(net, prob.Routing, pl.Policies, verify.Config{Seed: 1, Span: verifySp})
		verifySp.End()
		if len(viol) == 0 {
			fmt.Println("verification: OK (sampled semantics preserved)")
		} else {
			fmt.Printf("verification: %d VIOLATIONS\n", len(viol))
			for _, v := range viol {
				fmt.Println("  ", v)
			}
			return fmt.Errorf("placement failed verification")
		}
		if cv := verify.Capacities(net, prob.Network); len(cv) > 0 {
			for _, v := range cv {
				fmt.Println("  capacity:", v)
			}
			return fmt.Errorf("capacity verification failed")
		}
	}
	return nil
}
