// Command traceview reads a JSONL solver trace — a full per-request
// trace file written by ruleplace -trace / ruleplaced -trace-dir, or a
// partial flight-recorder dump written by the daemon on a deadline,
// node-limit, shed, or panic (flight-<trace_id>.jsonl) — and prints
// the search summary: node-outcome histogram, gap convergence, final
// status, and, for flight dumps, the loss accounting (events retained
// vs seen, dropped under contention, sampled away).
//
// Usage:
//
//	traceview [-json] [-check] file.jsonl
//	cat dump.jsonl | traceview
//
// -json emits the summary as JSON instead of the human report.
// -check exits nonzero if the trace fails its internal-consistency
// accounting (outcome counts vs node totals; done-event presence for
// full traces). Partial flight dumps are recognized by their
// flight_meta header and excused from the done-event requirement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"rulefit/internal/obs/traceview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		asJSON = flag.Bool("json", false, "emit the summary as JSON")
		check  = flag.Bool("check", false, "fail on internal-consistency errors")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		flag.Usage()
		return fmt.Errorf("at most one trace file")
	}

	sum, err := traceview.Summarize(in)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Print(sum.Render())
	}
	if *check {
		if err := sum.Check(); err != nil {
			return fmt.Errorf("consistency check: %w", err)
		}
	}
	return nil
}
