// Command rulefitlint is the repo's custom static-analysis suite: a
// multichecker over the analyzers in internal/analysis. It runs in two
// modes:
//
//	rulefitlint ./...                 # standalone, like staticcheck
//	go vet -vettool=$(which rulefitlint) ./...
//
// The vettool mode implements the subset of the cmd/vet unitchecker
// protocol that cmd/go drives: answer -V=full with a version line,
// accept a single *.cfg argument describing one package, read the
// dependency fact files named by PackageVetx, write this unit's
// (merged) fact set to VetxOutput, and report diagnostics on stderr
// with a non-zero exit. Facts are how the dataflow analyzers
// (detsource, sinkguard) see across package boundaries; cmd/go caches
// the .vetx files alongside export data.
//
// Analyzers can be disabled individually, e.g. -floatcmp=false.
// -json prints findings as a JSON array instead of plain lines
// (standalone mode).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rulefit/internal/analysis"
	"rulefit/internal/analysis/detsource"
	"rulefit/internal/analysis/errcheck"
	"rulefit/internal/analysis/floatcmp"
	"rulefit/internal/analysis/mapdet"
	"rulefit/internal/analysis/optzero"
	"rulefit/internal/analysis/sharedmut"
	"rulefit/internal/analysis/sinkguard"
)

// suite is the full analyzer set, in report order.
var suite = []*analysis.Analyzer{
	detsource.Analyzer,
	errcheck.Analyzer,
	floatcmp.Analyzer,
	mapdet.Analyzer,
	optzero.Analyzer,
	sharedmut.Analyzer,
	sinkguard.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes vet tools with -V=full (version, for the build
	// cache key) and -flags (JSON list of tool flags it may forward)
	// before handing over any real work.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			// cmd/go parses this line for a buildID to key its cache
			// on; hash the binary itself so rebuilding the linter
			// invalidates cached vet results.
			h := sha256.New()
			if f, err := os.Open(os.Args[0]); err == nil {
				_, _ = io.Copy(h, f)
				f.Close()
			}
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
			return 0
		}
		if a == "-flags" || a == "--flags" {
			type jsonFlag struct {
				Name  string
				Bool  bool
				Usage string
			}
			var flags []jsonFlag
			for _, an := range suite {
				flags = append(flags, jsonFlag{an.Name, true, "enable the " + an.Name + " analyzer"})
			}
			out, _ := json.Marshal(flags)
			fmt.Println(string(out))
			return 0
		}
	}

	fs := flag.NewFlagSet("rulefitlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array (standalone mode)")
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0], active)
	}
	return runStandalone(rest, active, *jsonOut)
}

// finding is one diagnostic in -json output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runStandalone lints the packages matching the patterns (default ./...).
func runStandalone(patterns []string, active []*analysis.Analyzer, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rulefitlint:", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rulefitlint:", err)
		return 2
	}
	if jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Category, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "rulefitlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the package description cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool handles one `go vet` unit of work.
func runVetTool(cfgPath string, active []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rulefitlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rulefitlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Facts protocol: seed the store with every dependency's .vetx file,
	// run the analyzers (even for VetxOnly units — importers need the
	// facts this unit exports), and write the merged set back out.
	facts := analysis.NewFactSet()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		depPaths = append(depPaths, path)
	}
	sort.Strings(depPaths)
	for _, path := range depPaths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			// A dependency outside the vet run (or an older cmd/go that
			// never wrote it): analyze without its facts.
			continue
		}
		dep, err := analysis.DecodeFactSet(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rulefitlint: facts of %s: %v\n", path, err)
			return 2
		}
		facts.Merge(dep)
	}

	diags, err := lintVetUnit(cfg, active, facts)
	if err != nil {
		if cfg.VetxOutput != "" {
			// Still satisfy the protocol so cmd/go does not fail the
			// importers on a missing file.
			_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "rulefitlint:", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		wire, err := facts.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rulefitlint:", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, wire, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "rulefitlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// lintVetUnit parses and type-checks the unit's files using the export
// data cmd/go already compiled, then runs the analyzers against the
// given fact store (pre-seeded with dependency facts).
func lintVetUnit(cfg vetConfig, active []*analysis.Analyzer, facts *analysis.FactSet) ([]analysis.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Keep scope aligned with standalone mode: shipped code only.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	return analysis.RunAnalyzersFacts([]*analysis.Package{pkg}, active, facts)
}
