// Command ruleload is the deterministic load harness for the
// placement daemon: it replays a randgen-seeded workload against a
// live ruleplaced (or in-process against the core placer), prints one
// live status line per interval, and writes a machine-readable
// rulefit-load/v1 report for cmd/loaddiff.
//
// Usage:
//
//	ruleload [-target URL | -inprocess] [-seed N] [-requests N]
//	         [-repeat N] [-concurrency N] [-rps R] [-duration D]
//	         [-merging] [-timelimit SEC] [-out FILE] [-quiet]
//	         [-sweep] [-shed-threshold R] [-step-requests N]
//	         [-max-concurrency N]
//
// Modes:
//
//	closed-loop (default): -concurrency N workers each keep one
//	    request in flight until the workload is drained.
//	open-loop: -rps R paces arrivals at a fixed rate regardless of
//	    completions; -duration caps the issuing phase.
//	sweep: -sweep searches for the daemon's shed point by offering
//	    barrier-started waves of rising concurrency, then bisecting to
//	    the knee — the largest concurrency whose shed rate stays below
//	    -shed-threshold. The report records the measured steps and the
//	    served capacity at the knee.
//
// The workload is a pure function of -seed: identical invocations
// replay byte-identical request bodies (the report's workload
// fingerprint proves it), so two reports diff request-by-request.
// Live status goes to stderr; the report goes to -out (default
// stdout).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"rulefit/internal/load"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ruleload: %v\n", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		target    = flag.String("target", "", "base URL of a live ruleplaced (e.g. http://localhost:8080)")
		inprocess = flag.Bool("inprocess", false, "replay through the in-process placer instead of HTTP")

		seed        = flag.Int64("seed", 1, "workload seed")
		requests    = flag.Int("requests", 16, "distinct workload instances")
		repeat      = flag.Int("repeat", 1, "replay the workload this many times")
		concurrency = flag.Int("concurrency", 1, "closed-loop worker count")
		rps         = flag.Float64("rps", 0, "open-loop arrival rate (0 = closed loop)")
		duration    = flag.Duration("duration", 0, "open-loop issuing cap (0 = issue everything)")
		merging     = flag.Bool("merging", false, "request rule merging")
		timelimit   = flag.Float64("timelimit", 60, "per-request solver time limit (seconds)")

		sweep         = flag.Bool("sweep", false, "search for the shed point instead of a fixed run")
		shedThreshold = flag.Float64("shed-threshold", 0.5, "sweep: shed rate that counts as saturated")
		stepRequests  = flag.Int("step-requests", 8, "sweep: requests measured per concurrency level")
		maxConc       = flag.Int("max-concurrency", 64, "sweep: doubling-phase cap")

		out   = flag.String("out", "", "report file (default stdout)")
		quiet = flag.Bool("quiet", false, "suppress live status lines")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if (*target == "") == !*inprocess {
		return fmt.Errorf("exactly one of -target or -inprocess is required")
	}

	var placer load.Placer
	if *inprocess {
		placer = load.NewInProcessPlacer(0, 0)
	} else {
		placer = load.NewHTTPPlacer(*target, nil)
	}

	cfg := load.Config{
		Seed:         *seed,
		Requests:     *requests,
		Repeat:       *repeat,
		Concurrency:  *concurrency,
		RPS:          *rps,
		Duration:     *duration,
		Merging:      *merging,
		TimeLimitSec: *timelimit,
	}
	if !*quiet {
		cfg.Status = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var rep *load.Report
	var err error
	if *sweep {
		rep, err = load.RunSweep(ctx, cfg, load.SweepOpts{
			ShedThreshold:  *shedThreshold,
			StepRequests:   *stepRequests,
			MaxConcurrency: *maxConc,
		}, placer)
	} else {
		rep, err = load.Run(ctx, cfg, placer)
	}
	if err != nil {
		return err
	}
	if !*quiet {
		summarize(os.Stderr, rep, time.Since(start))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rep.WriteJSON(w)
}

// summarize prints the one-paragraph human trailer after a run.
func summarize(w io.Writer, rep *load.Report, elapsed time.Duration) {
	fmt.Fprintf(w, "done in %.1fs: %d requests (%d ok, %d shed, %d errors), %.1f rps, p50=%.1fms p99=%.1fms\n",
		elapsed.Seconds(), rep.Total, rep.OK, rep.Shed, rep.Errors,
		rep.AchievedRPS, rep.P50MS, rep.P99MS)
	if rep.Sweep != nil {
		state := "saturated"
		if !rep.Sweep.Saturated {
			state = "never saturated (knee is a lower bound)"
		}
		fmt.Fprintf(w, "shed point: knee at %d concurrent, %.1f rps served, %s\n",
			rep.Sweep.KneeConcurrency, rep.Sweep.CapacityRPS, state)
	}
	fmt.Fprintf(w, "workload fingerprint: %s\n", rep.Workload.Fingerprint)
}
