// Command ruleload is the deterministic load harness for the
// placement daemon: it replays a randgen-seeded workload against a
// live ruleplaced (or in-process against the core placer), prints one
// live status line per interval, and writes a machine-readable
// rulefit-load/v1 report for cmd/loaddiff.
//
// Usage:
//
//	ruleload [-target URL | -inprocess] [-seed N] [-requests N]
//	         [-repeat N] [-concurrency N] [-rps R] [-duration D]
//	         [-merging] [-timelimit SEC] [-out FILE] [-quiet]
//	         [-sweep] [-shed-threshold R] [-step-requests N]
//	         [-max-concurrency N]
//	         [-delta] [-delta-steps N] [-delta-ingresses N]
//	         [-delta-rules N] [-delta-k K] [-delta-min-speedup R]
//
// Modes:
//
//	closed-loop (default): -concurrency N workers each keep one
//	    request in flight until the workload is drained.
//	open-loop: -rps R paces arrivals at a fixed rate regardless of
//	    completions; -duration caps the issuing phase.
//	sweep: -sweep searches for the daemon's shed point by offering
//	    barrier-started waves of rising concurrency, then bisecting to
//	    the knee — the largest concurrency whose shed rate stays below
//	    -shed-threshold. The report records the measured steps and the
//	    served capacity at the knee.
//	delta: -delta replays single-rule deltas through a placement
//	    session, pairing every warm answer with a cold solve of the
//	    identical instance. The report's delta record carries the
//	    warm/cold p50/p99 split and the per-step byte-identity
//	    verdicts; any hash mismatch fails the run, and
//	    -delta-min-speedup R additionally fails it when the cold/warm
//	    p99 ratio lands below R (the session SLO gate).
//
// The workload is a pure function of -seed: identical invocations
// replay byte-identical request bodies (the report's workload
// fingerprint proves it), so two reports diff request-by-request.
// Live status goes to stderr; the report goes to -out (default
// stdout).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"rulefit/internal/load"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ruleload: %v\n", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		target    = flag.String("target", "", "base URL of a live ruleplaced (e.g. http://localhost:8080)")
		inprocess = flag.Bool("inprocess", false, "replay through the in-process placer instead of HTTP")

		seed        = flag.Int64("seed", 1, "workload seed")
		requests    = flag.Int("requests", 16, "distinct workload instances")
		repeat      = flag.Int("repeat", 1, "replay the workload this many times")
		concurrency = flag.Int("concurrency", 1, "closed-loop worker count")
		rps         = flag.Float64("rps", 0, "open-loop arrival rate (0 = closed loop)")
		duration    = flag.Duration("duration", 0, "open-loop issuing cap (0 = issue everything)")
		merging     = flag.Bool("merging", false, "request rule merging")
		timelimit   = flag.Float64("timelimit", 60, "per-request solver time limit (seconds)")

		sweep         = flag.Bool("sweep", false, "search for the shed point instead of a fixed run")
		shedThreshold = flag.Float64("shed-threshold", 0.5, "sweep: shed rate that counts as saturated")
		stepRequests  = flag.Int("step-requests", 8, "sweep: requests measured per concurrency level")
		maxConc       = flag.Int("max-concurrency", 64, "sweep: doubling-phase cap")

		delta         = flag.Bool("delta", false, "replay single-rule deltas through a session, warm vs cold")
		deltaSteps    = flag.Int("delta-steps", 20, "delta: single-rule deltas to replay")
		deltaIngress  = flag.Int("delta-ingresses", 8, "delta: policies in the instance class")
		deltaRules    = flag.Int("delta-rules", 100, "delta: rules per policy in the instance class")
		deltaK        = flag.Int("delta-k", 4, "delta: fat-tree K of the instance class")
		deltaMinSpeed = flag.Float64("delta-min-speedup", 0, "delta: fail unless cold/warm p99 ratio reaches R (0 = no gate)")

		out   = flag.String("out", "", "report file (default stdout)")
		quiet = flag.Bool("quiet", false, "suppress live status lines")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if (*target == "") == !*inprocess {
		return fmt.Errorf("exactly one of -target or -inprocess is required")
	}

	var placer load.Placer
	if *inprocess {
		placer = load.NewInProcessPlacer(0, 0)
	} else {
		placer = load.NewHTTPPlacer(*target, nil)
	}

	cfg := load.Config{
		Seed:         *seed,
		Requests:     *requests,
		Repeat:       *repeat,
		Concurrency:  *concurrency,
		RPS:          *rps,
		Duration:     *duration,
		Merging:      *merging,
		TimeLimitSec: *timelimit,
	}
	if !*quiet {
		cfg.Status = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *delta && *sweep {
		return fmt.Errorf("-delta and -sweep are mutually exclusive")
	}

	start := time.Now()
	var rep *load.Report
	var err error
	switch {
	case *delta:
		var driver load.SessionDriver
		if *inprocess {
			driver = load.NewInProcessSessionDriver(0, 0)
		} else {
			driver = load.NewHTTPSessionDriver(*target, nil)
		}
		rep, err = load.RunDelta(ctx, cfg, load.DeltaOpts{
			Steps:          *deltaSteps,
			Ingresses:      *deltaIngress,
			RulesPerPolicy: *deltaRules,
			FatTreeK:       *deltaK,
		}, driver, placer)
	case *sweep:
		rep, err = load.RunSweep(ctx, cfg, load.SweepOpts{
			ShedThreshold:  *shedThreshold,
			StepRequests:   *stepRequests,
			MaxConcurrency: *maxConc,
		}, placer)
	default:
		rep, err = load.Run(ctx, cfg, placer)
	}
	if err != nil {
		return err
	}
	if !*quiet {
		summarize(os.Stderr, rep, time.Since(start))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	// The delta gates run after the report is written, so a failing run
	// still leaves the evidence on disk.
	if rep.Delta != nil {
		if rep.Delta.Mismatched > 0 {
			return fmt.Errorf("delta replay: %d step(s) broke warm/cold byte identity", rep.Delta.Mismatched)
		}
		if *deltaMinSpeed > 0 && rep.Delta.SpeedupP99 < *deltaMinSpeed {
			return fmt.Errorf("delta replay: p99 speedup %.2fx below the %.2fx SLO gate",
				rep.Delta.SpeedupP99, *deltaMinSpeed)
		}
	}
	return nil
}

// summarize prints the one-paragraph human trailer after a run.
func summarize(w io.Writer, rep *load.Report, elapsed time.Duration) {
	fmt.Fprintf(w, "done in %.1fs: %d requests (%d ok, %d shed, %d errors), %.1f rps, p50=%.1fms p99=%.1fms\n",
		elapsed.Seconds(), rep.Total, rep.OK, rep.Shed, rep.Errors,
		rep.AchievedRPS, rep.P50MS, rep.P99MS)
	if rep.Sweep != nil {
		state := "saturated"
		if !rep.Sweep.Saturated {
			state = "never saturated (knee is a lower bound)"
		}
		fmt.Fprintf(w, "shed point: knee at %d concurrent, %.1f rps served, %s\n",
			rep.Sweep.KneeConcurrency, rep.Sweep.CapacityRPS, state)
	}
	if rep.Delta != nil {
		fmt.Fprintf(w, "delta (%s, %d steps): warm p50=%.1fms p99=%.1fms, cold p50=%.1fms p99=%.1fms, p99 speedup %.1fx, %d mismatched\n",
			rep.Delta.Class, rep.Delta.Steps,
			rep.Delta.WarmP50MS, rep.Delta.WarmP99MS,
			rep.Delta.ColdP50MS, rep.Delta.ColdP99MS,
			rep.Delta.SpeedupP99, rep.Delta.Mismatched)
	}
	fmt.Fprintf(w, "workload fingerprint: %s\n", rep.Workload.Fingerprint)
}
