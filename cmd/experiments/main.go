// Command experiments regenerates the paper's evaluation (§V): the
// runtime-scaling figures (7–11), the rule-merging table (Table II), the
// incremental-deployment study (Experiment 5), and the baseline
// comparison the paper closes with.
//
// Absolute runtimes differ from the paper's CPLEX-on-Xeon setup (the
// solvers here are pure Go, built from scratch); the experiments
// reproduce the qualitative shapes. Scale presets:
//
//	-scale small   fast sanity pass (default; minutes)
//	-scale medium  larger fat-trees, longer sweeps
//	-scale paper   paper-sized parameters (hours; not recommended)
//	-scale 0.5     paper workload scaled by a factor in (0, 1]
//	               (keeps the paper's arity; CI's paper-scale smoke)
//
// Usage:
//
//	experiments [-exp all|1|2|3|4|5|6] [-scale small|medium|paper]
//	            [-k 4] [-seeds 3] [-backend ilp|sat] [-timeout 60s]
//	            [-rules 50] [-caps 100]
//	            [-workers 0] [-parallel 1] [-json out.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	            [-trace out.jsonl] [-metrics] [-pprof :6060]
//
// -workers sets the ILP branch & bound parallelism per solve (0 =
// GOMAXPROCS; the placement is identical for any value). -parallel
// bounds how many workload instances a sweep solves concurrently.
// -json runs the Experiment 1 sweep once per comma-separated worker
// count (e.g. -json BENCH.json -workers 1,4) and writes the
// machine-readable report scripts/bench.sh commits as BENCH_<stamp>.json;
// each run record carries the solver's stop reason, prune breakdown,
// and final bound gap.
//
// -trace appends every solve's event stream to one JSONL file (lines
// from concurrent solves interleave; use -parallel 1 for a readable
// single-solve trace). -metrics prints the process-wide Prometheus-text
// solver counters when the run finishes. -pprof serves net/http/pprof
// plus /metrics on the given address while the experiments run.
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rulefit/internal/bench"
	"rulefit/internal/core"
	"rulefit/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// preset bundles the sweep parameters for one scale.
type preset struct {
	base       bench.Config
	ruleCounts []int
	exp1Caps   []int
	pathCounts []int
	exp2Caps   []int
	mergeRules []int
	exp3Caps   []int
	exp4Caps   []int
	installs   []int
	reroutes   []int
}

func presets(scale string, k int, timeout time.Duration, backend core.Backend) (*preset, error) {
	base := bench.Config{Seed: 0}
	base.Opts.TimeLimit = timeout
	base.Opts.Backend = backend
	switch scale {
	case "small":
		base.K = 4
		base.Ingresses = 8
		base.PathsPerIngress = 8
		base.Rules = 20
		return &preset{
			base:       base,
			ruleCounts: []int{5, 10, 15, 20, 25, 30},
			exp1Caps:   []int{25, 100},
			pathCounts: []int{16, 32, 48, 64, 80, 96},
			exp2Caps:   []int{25, 100},
			mergeRules: []int{1, 2, 3, 4, 5, 6},
			exp3Caps:   []int{8, 9, 10},
			exp4Caps:   []int{10, 15, 20, 25, 30, 40, 100, 200},
			installs:   []int{8, 16, 32},
			reroutes:   []int{1, 2, 4},
		}, nil
	case "medium":
		base.K = 8
		base.Ingresses = 16
		base.PathsPerIngress = 8
		base.Rules = 20
		return &preset{
			base:       base,
			ruleCounts: []int{10, 20, 30, 40},
			exp1Caps:   []int{40, 200},
			pathCounts: []int{32, 64, 128, 192},
			exp2Caps:   []int{40, 200},
			mergeRules: []int{2, 4, 6, 8},
			exp3Caps:   []int{10, 12, 14},
			exp4Caps:   []int{20, 30, 40, 60, 100, 300},
			installs:   []int{16, 32, 64},
			reroutes:   []int{1, 4, 8},
		}, nil
	case "paper":
		return paperPreset(base, k, 1), nil
	default:
		// A numeric scale is a fraction of the paper workload: -scale 0.5
		// keeps the paper's fat-tree arity but halves the ingress, path,
		// and rule counts (CI's paper-scale smoke runs one such point).
		alpha, err := strconv.ParseFloat(scale, 64)
		if err != nil || alpha <= 0 || alpha > 1 {
			return nil, fmt.Errorf("invalid -scale %q: want small, medium, paper, or a paper-workload factor in (0, 1]", scale)
		}
		return paperPreset(base, k, alpha), nil
	}
}

// paperPreset builds the paper-sized sweep scaled by alpha in (0, 1]:
// the fat-tree arity is kept (the paper's k = 8 topology), while the
// workload — ingresses, paths, rules, and the swept parameter lists —
// shrinks proportionally.
func paperPreset(base bench.Config, k int, alpha float64) *preset {
	base.K = k
	if base.K == 0 {
		base.K = 8
	}
	base.Ingresses = scaleInt(128, alpha)
	base.PathsPerIngress = scaleInt(8, alpha)
	base.Rules = scaleInt(100, alpha)
	return &preset{
		base:       base,
		ruleCounts: scaleInts([]int{20, 30, 40, 50, 60, 70, 80, 90, 100, 110}, alpha),
		exp1Caps:   scaleInts([]int{200, 1000}, alpha),
		pathCounts: scaleInts([]int{256, 512, 768, 1024, 1280, 1536, 1792, 2048}, alpha),
		exp2Caps:   scaleInts([]int{200, 500}, alpha),
		mergeRules: scaleInts([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, alpha),
		exp3Caps:   scaleInts([]int{65, 70, 75}, alpha),
		exp4Caps:   scaleInts([]int{50, 100, 200, 300, 400, 500, 750, 1000}, alpha),
		installs:   scaleInts([]int{64, 128, 256}, alpha),
		reroutes:   scaleInts([]int{1, 16, 32}, alpha),
	}
}

// scaleInt rounds v*alpha, clamped to at least 1 so no sweep dimension
// collapses to zero.
func scaleInt(v int, alpha float64) int {
	n := int(math.Round(float64(v) * alpha))
	if n < 1 {
		return 1
	}
	return n
}

// scaleInts scales a swept parameter list, deduplicating collisions
// introduced by the rounding (the list stays sorted: inputs are).
func scaleInts(vs []int, alpha float64) []int {
	out := make([]int, 0, len(vs))
	for _, v := range vs {
		n := scaleInt(v, alpha)
		if len(out) == 0 || out[len(out)-1] != n {
			out = append(out, n)
		}
	}
	return out
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment to run: all, 1, 2, 3, 4, 5, 6")
		scale      = flag.String("scale", "small", "parameter scale: small, medium, paper, or a paper-workload factor in (0, 1]")
		k          = flag.Int("k", 0, "override fat-tree arity for -scale paper")
		seeds      = flag.Int("seeds", 3, "instances per point (the paper uses 5)")
		backend    = flag.String("backend", "ilp", "solver backend: ilp or sat")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-solve time limit")
		csvDir     = flag.String("csv", "", "also write CSV series into this directory")
		workers    = flag.String("workers", "0", "ILP solver workers per solve; comma-separated list with -json (0 = GOMAXPROCS)")
		rulesOver  = flag.String("rules", "", "override the Experiment 1 rule-count sweep (comma-separated); CI's paper-scale smoke uses this to run a single Fig. 7 point")
		capsOver   = flag.String("caps", "", "override the Experiment 1 capacity sweep (comma-separated)")
		parallel   = flag.Int("parallel", 1, "workload instances solved concurrently per sweep")
		jsonOut    = flag.String("json", "", "write a machine-readable Experiment 1 report to this file and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "append all solver event streams (JSONL) to this file")
		metrics    = flag.Bool("metrics", false, "print Prometheus-text solver counters on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
	)
	flag.Parse()

	workerCounts, err := parseWorkers(*workers)
	if err != nil {
		return err
	}
	rulesList, err := parseIntList("-rules", *rulesOver)
	if err != nil {
		return err
	}
	capsList, err := parseIntList("-caps", *capsOver)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}
	if *metrics {
		defer func() {
			if err := obs.Default.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	be := core.BackendILP
	if *backend == "sat" {
		be = core.BackendSAT
	}
	p, err := presets(*scale, *k, *timeout, be)
	if err != nil {
		return err
	}
	if rulesList != nil {
		p.ruleCounts = rulesList
	}
	if capsList != nil {
		p.exp1Caps = capsList
	}
	p.base.Parallel = *parallel
	p.base.Opts.Workers = workerCounts[0]
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		jw := obs.NewJSONLWriter(f)
		p.base.Opts.SolverSink = jw
		defer func() {
			if err := jw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace:", err)
			}
		}()
	}

	if *jsonOut != "" {
		rep, err := bench.BuildReport(p.base, p.ruleCounts, p.exp1Caps, *seeds, workerCounts, *scale)
		if err != nil {
			return err
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	want := func(e string) bool { return *exp == "all" || *exp == e }

	if want("1") {
		for _, kk := range exp1Arities(*scale, *k) {
			base := p.base
			base.K = kk
			series, err := bench.Experiment1(base, p.ruleCounts, p.exp1Caps, *seeds)
			if err != nil {
				return err
			}
			title := fmt.Sprintf("Experiment 1 (Figs. 7-9 analogue): runtime vs #rules, fat-tree k=%d, %d ingresses x %d paths",
				kk, base.Ingresses, base.PathsPerIngress)
			fmt.Println(bench.RenderSeries(title, "#rules", series))
			if err := writeCSV(*csvDir, fmt.Sprintf("exp1_k%d.csv", kk), "rules", series); err != nil {
				return err
			}
		}
	}
	if want("2") {
		series, err := bench.Experiment2(p.base, p.pathCounts, p.exp2Caps)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderSeries("Experiment 2 (Fig. 10 analogue): runtime vs #paths", "#paths", series))
		if err := writeCSV(*csvDir, "exp2.csv", "paths", series); err != nil {
			return err
		}
	}
	if want("3") {
		base := p.base
		base.PathsPerIngress = 4
		base.Rules = 8
		cells, err := bench.Experiment3(base, p.mergeRules, p.exp3Caps)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable2(cells))
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, "exp3.csv"))
			if err != nil {
				return err
			}
			if err := bench.WriteTable2CSV(f, cells); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if want("4") {
		pts, err := bench.Experiment4(p.base, p.exp4Caps, *seeds)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderPoints("Experiment 4 (Fig. 11 analogue): runtime vs switch capacity", "C", pts))
		if err := writeCSV(*csvDir, "exp4.csv", "capacity", map[int][]bench.Point{0: pts}); err != nil {
			return err
		}
	}
	if want("5") {
		base := p.base
		base.Capacity = 40
		res, err := bench.Experiment5(base, p.installs, p.reroutes)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderExp5(res))
	}
	if want("6") {
		res, err := bench.Baselines(p.base)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderBaselines(res))
	}
	return nil
}

// servePprof exposes net/http/pprof (via the default mux) plus the
// process-wide solver counters at /metrics, for profiling long sweeps.
func servePprof(addr string) {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := obs.Default.WritePrometheus(w); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: /metrics:", err)
		}
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: pprof server:", err)
		}
	}()
}

// parseWorkers parses the -workers flag: a comma-separated list of
// solver worker counts, e.g. "1,4". Only -json uses entries beyond the
// first.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers is empty")
	}
	return out, nil
}

// parseIntList parses an optional comma-separated list of positive
// ints, returning nil (no override) for the empty string.
func parseIntList(name, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad %s entry %q: want positive integers", name, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s is empty", name)
	}
	return out, nil
}

// writeCSV emits a series into dir/name when -csv is set.
func writeCSV(dir, name, xLabel string, series map[int][]bench.Point) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := bench.WriteCSV(f, xLabel, series); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exp1Arities returns the fat-tree sizes standing in for the paper's
// k = 8, 16, 32 figures at each scale.
func exp1Arities(scale string, override int) []int {
	if override != 0 {
		return []int{override}
	}
	switch scale {
	case "small":
		return []int{4}
	case "medium":
		return []int{4, 6, 8}
	case "paper":
		return []int{8, 16, 32}
	default:
		// Numeric scale: one arity, the paper's base topology.
		return []int{8}
	}
}
