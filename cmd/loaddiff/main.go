// Command loaddiff compares two rulefit-load/v1 reports written by
// cmd/ruleload. It aligns requests by issue index, classifies latency
// movement with the shared bench noise model (a status-rank change
// trumps the wall clock), flags placement drift (content-hash changes
// between runs of the same workload), and compares shed-point knees on
// sweep reports.
//
// Usage:
//
//	loaddiff [-threshold R] [-min-wall-ms MS] [-json] [-advisory] OLD NEW
//	loaddiff -check FILE
//
// -check validates a single report against the rulefit-load/v1 schema
// and exits 0/2 without comparing; on delta-replay reports it also
// exits 1 if any step broke warm/cold byte identity.
//
// Exit status: 0 when no regressions, 1 when any aligned request
// regressed, any placement drifted, or the sweep knee moved down
// (suppressed by -advisory), 2 on usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rulefit/internal/bench"
	"rulefit/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		threshold = flag.Float64("threshold", 0.25, "relative wall-clock change tolerated as noise")
		minWallMS = flag.Float64("min-wall-ms", 5, "absolute wall-clock change (ms) required to flag")
		jsonOut   = flag.Bool("json", false, "emit the diff as JSON instead of text")
		advisory  = flag.Bool("advisory", false, "always exit 0 on successful comparison")
		check     = flag.String("check", "", "validate FILE against the report schema and exit")
	)
	flag.Parse()

	if *check != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "loaddiff: -check takes no positional arguments")
			return 2
		}
		rep, err := load.ReadReport(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loaddiff: %v\n", err)
			return 2
		}
		// Delta reports carry their own internal pass/fail: every warm
		// answer must hash identically to its cold re-solve.
		if rep.Delta != nil && rep.Delta.Mismatched > 0 {
			fmt.Fprintf(os.Stderr, "loaddiff: %s: delta report records %d warm/cold identity mismatches\n",
				*check, rep.Delta.Mismatched)
			return 1
		}
		fmt.Printf("%s: schema %s ok (%d requests, fingerprint %s)\n",
			*check, rep.Schema, rep.Total, rep.Workload.Fingerprint)
		return 0
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: loaddiff [flags] OLD NEW  (or loaddiff -check FILE)")
		return 2
	}
	oldRep, err := load.ReadReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loaddiff: %v\n", err)
		return 2
	}
	newRep, err := load.ReadReport(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loaddiff: %v\n", err)
		return 2
	}

	d := load.CompareReports(oldRep, newRep, bench.DiffOptions{
		WallThreshold: *threshold,
		MinWallMS:     *minWallMS,
	})
	if *jsonOut {
		if err := writeJSON(d); err != nil {
			fmt.Fprintf(os.Stderr, "loaddiff: %v\n", err)
			return 2
		}
	} else if err := d.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loaddiff: %v\n", err)
		return 2
	}
	if d.HasRegressions() && !*advisory {
		return 1
	}
	return 0
}

func writeJSON(d *load.Diff) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
