// Command diffcheck runs long differential-testing soaks: it generates
// seeded random placement instances (internal/randgen), cross-checks the
// ILP, SAT, and exhaustive oracles plus the metamorphic property battery
// on each (internal/diffcheck), shrinks any failing instance to a
// minimal reproducer, and writes it as a regression fixture that the
// tier-1 test suite replays forever after.
//
// Usage:
//
//	diffcheck [-n 200] [-seed0 1] [-soak 10m] [-profile quick|soak]
//	          [-out internal/diffcheck/testdata/regressions]
//	          [-workers 1,2,8] [-metamorphic] [-max-failures 5] [-v]
//	diffcheck -replay fixture.json
//	diffcheck -export seed -out dir [-note text]
//
// Exit status is non-zero if any instance failed (or a replay fails).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rulefit/internal/core"
	"rulefit/internal/diffcheck"
	"rulefit/internal/randgen"
	"rulefit/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "diffcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n           = flag.Int("n", 200, "number of instances to check (ignored with -soak)")
		seed0       = flag.Int64("seed0", 1, "first seed")
		soak        = flag.Duration("soak", 0, "run until this much time has passed (0 = use -n)")
		profile     = flag.String("profile", "quick", "instance size profile: quick or soak")
		outDir      = flag.String("out", "internal/diffcheck/testdata/regressions", "directory for shrunk failure fixtures")
		workers     = flag.String("workers", "1,2,8", "comma-separated ILP worker counts to cross-check")
		metamorphic = flag.Bool("metamorphic", true, "run the metamorphic property battery")
		maxFailures = flag.Int("max-failures", 5, "stop after this many failing instances")
		satLimit    = flag.Duration("sat-limit", 10*time.Second, "time budget for the SAT oracle per instance (0 = unlimited)")
		replay      = flag.String("replay", "", "replay one fixture file instead of soaking")
		export      = flag.Int64("export", 0, "export the instance for this seed as a fixture and exit")
		note        = flag.String("note", "", "note recorded in written fixtures")
		verbose     = flag.Bool("v", false, "log every instance")
	)
	flag.Parse()

	wc, err := parseWorkers(*workers)
	if err != nil {
		return err
	}
	opts := diffcheck.Options{
		Metamorphic:  *metamorphic,
		WorkerCounts: wc,
		SATTimeLimit: *satLimit,
		Verify:       verify.Config{SamplesPerRule: 4, RandomSamples: 8, MaxViolations: 3},
	}

	if *replay != "" {
		return replayFixture(*replay, opts)
	}

	makeCfg := randgen.FromSeed
	if *profile == "soak" {
		makeCfg = randgen.SoakConfig
	} else if *profile != "quick" {
		return fmt.Errorf("unknown profile %q", *profile)
	}

	if *export != 0 {
		cfg := makeCfg(*export)
		inst, err := randgen.Generate(cfg)
		if err != nil {
			return err
		}
		fix := diffcheck.NewFixture(inst, opts.Core, *note)
		path := filepath.Join(*outDir, fmt.Sprintf("seed%d.json", *export))
		if err := fix.WriteFile(path); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	start := time.Now()
	deadline := time.Time{}
	if *soak > 0 {
		deadline = start.Add(*soak)
	}
	var checked, failures, infeasible, exhaustive, satUnproven int
	for seed := *seed0; ; seed++ {
		if deadline.IsZero() {
			if checked >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		cfg := makeCfg(seed)
		inst, err := randgen.Generate(cfg)
		if err != nil {
			return fmt.Errorf("seed %d: generate: %w", seed, err)
		}
		opts.Verify.Seed = seed
		res := diffcheck.Check(inst, opts)
		checked++
		if res.ILP != nil && res.ILP.Status == core.StatusInfeasible {
			infeasible++
		}
		if res.Exhaustive != nil {
			exhaustive++
		}
		if res.SATUnproven {
			satUnproven++
		}
		if *verbose {
			fmt.Printf("seed %d: %s (%s)\n", seed, res.Summary(), cfg.Topo)
		}
		if res.Failed() {
			failures++
			fmt.Printf("FAIL seed %d: %s\n", seed, res.Summary())
			shrunk := diffcheck.Shrink(inst, opts, 0)
			kind := res.Failures[0].Kind
			fixNote := *note
			if fixNote == "" {
				fixNote = fmt.Sprintf("shrunk from seed %d, first failure %s", seed, res.Failures[0])
			}
			fix := diffcheck.NewFixture(shrunk, opts.Core, fixNote)
			path := filepath.Join(*outDir, fmt.Sprintf("seed%d_%s.json", seed, kind))
			if err := fix.WriteFile(path); err != nil {
				return fmt.Errorf("writing fixture: %w", err)
			}
			fmt.Printf("  shrunk reproducer written to %s (%d switches, %d policies)\n",
				path, shrunk.Problem.Network.NumSwitches(), len(shrunk.Problem.Policies))
			if failures >= *maxFailures {
				fmt.Println("stopping: max failures reached")
				break
			}
		}
	}
	fmt.Printf("checked %d instances in %v: %d failures, %d infeasible, %d with exhaustive oracle, %d SAT timeouts\n",
		checked, time.Since(start).Round(time.Millisecond), failures, infeasible, exhaustive, satUnproven)
	if failures > 0 {
		return fmt.Errorf("%d failing instances", failures)
	}
	return nil
}

// replayFixture re-runs one committed fixture through the harness.
func replayFixture(path string, opts diffcheck.Options) error {
	fix, err := diffcheck.LoadFixture(path)
	if err != nil {
		return err
	}
	inst, coreOpts, err := fix.Instance()
	if err != nil {
		return err
	}
	opts.Core = coreOpts
	res := diffcheck.Check(inst, opts)
	fmt.Printf("%s: %s\n", path, res.Summary())
	if res.Failed() {
		return fmt.Errorf("fixture still failing")
	}
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers value %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers needs at least one count")
	}
	return out, nil
}
