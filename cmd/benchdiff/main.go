// Command benchdiff compares two rulefit-bench/v1 reports (BENCH_*.json)
// and exits nonzero when any aligned run regressed. It is the perf gate
// behind the committed benchmark trajectory: CI runs it in advisory mode
// against the latest committed report, and a release check can run it
// strictly between the last two trajectory points.
//
// Usage:
//
//	benchdiff OLD.json NEW.json     compare two explicit reports
//	benchdiff -dir .                compare the two latest BENCH_*.json in a directory
//
// A run regresses when its wall clock moves more than -min-wall-ms
// absolutely AND more than -threshold relatively, or when its solve
// outcome worsens (e.g. optimal -> limit). Node/iteration drift is
// reported separately: the solver is deterministic, so drift means the
// search changed, not that the machine was busy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rulefit/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		dir       = flag.String("dir", "", "compare the two lexically-latest BENCH_*.json in this directory")
		threshold = flag.Float64("threshold", 0.25, "relative wall-clock slowdown tolerated before a run regresses")
		minWallMS = flag.Float64("min-wall-ms", 5, "absolute wall-clock change (ms) required before a run can regress")
		jsonOut   = flag.Bool("json", false, "emit the diff as JSON instead of text")
		advisory  = flag.Bool("advisory", false, "report regressions but exit 0 (CI advisory mode)")
	)
	flag.Parse()

	var oldPath, newPath string
	switch {
	case *dir != "":
		if flag.NArg() != 0 {
			return fmt.Errorf("-dir and positional report paths are mutually exclusive")
		}
		var err error
		oldPath, newPath, err = bench.LatestPair(*dir)
		if err != nil {
			return err
		}
	case flag.NArg() == 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		return fmt.Errorf("usage: benchdiff OLD.json NEW.json | benchdiff -dir DIR")
	}

	oldRep, err := bench.ReadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := bench.ReadReport(newPath)
	if err != nil {
		return err
	}
	d := bench.CompareReports(oldRep, newRep, bench.DiffOptions{
		WallThreshold: *threshold,
		MinWallMS:     *minWallMS,
	})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			return err
		}
	} else if err := d.Render(os.Stdout); err != nil {
		return err
	}
	if d.HasRegressions() && !*advisory {
		os.Exit(1)
	}
	return nil
}
