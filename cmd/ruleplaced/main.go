// Command ruleplaced is the long-running rule placement daemon: it
// serves the core.Place pipeline over HTTP with operational telemetry
// (request-scoped trace IDs, latency/size histograms, saturation
// gauges, structured JSON logs) and drains gracefully on SIGTERM.
//
// Usage:
//
//	ruleplaced [-addr :8080] [-debug-addr 127.0.0.1:6060]
//	           [-max-inflight N] [-max-queue N] [-max-sessions N]
//	           [-default-timeout 60s] [-max-timeout 10m]
//	           [-trace-dir DIR] [-drain-timeout 30s] [-no-slo]
//	           [-solve-delay D] [-flight-events N] [-flight-dir DIR]
//	           [-profile-threshold D] [-profile-dir DIR]
//
// Endpoints (on -addr):
//
//	POST   /v1/place              solve a placement: {"problem": <spec JSON>, "options": {...}}
//	POST   /v1/session            create a stateful session (same body as /v1/place)
//	GET    /v1/session/{id}       current session version + placement
//	POST   /v1/session/{id}/delta apply deltas: {"deltas": [{"op": "add_rule", ...}, ...]}
//	DELETE /v1/session/{id}       drop the session
//	GET    /metrics               Prometheus text exposition (counters, gauges, histograms)
//	GET    /metrics/json          JSON metrics snapshot
//	GET    /statusz               saturation snapshot: in-flight, queue depth, 1m/5m request and shed rates, live solves
//	GET    /healthz               liveness (200 while the process runs)
//	GET    /readyz                readiness (503 during drain)
//	GET    /debug/solvez          live solve introspection: one progress snapshot per in-flight request
//	GET    /debug/flightz         on-demand dump of the global flight-recorder ring (JSONL)
//
// Every /v1/place response carries X-Rulefit-Trace-Id (joinable with
// the daemon's log lines and trace files) and, unless -no-slo is set,
// a Server-Timing header attributing wall time to pipeline phases
// (queue_wait, parse, encode, model_build, solve, extract).
//
// -debug-addr serves net/http/pprof plus /metrics, /debug/solvez, and
// /debug/flightz mirrors, intended for a loopback-only bind.
// -solve-delay artificially extends each solve-slot occupancy for load
// experiments (cmd/ruleload -sweep calibration); leave it zero in
// production.
//
// Flight recorder: every solve's event stream feeds a per-request ring
// and a global ring (-flight-events sizes both). When a solve dies on
// its deadline or node limit, panics, or when admission sheds, the
// relevant ring is dumped to -flight-dir (default: -trace-dir) as
// flight-<trace_id>.jsonl — readable with cmd/traceview. With
// -profile-threshold set, solves outrunning the threshold get a CPU
// profile captured into -profile-dir until they finish, labeled by
// trace_id/phase. Placements are byte-identical to running core.Place
// in-process: the daemon only adds observability around the solve,
// never inside it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rulefit/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ruleplaced:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "API listen address")
		debugAddr    = flag.String("debug-addr", "", "pprof/debug listen address (empty disables; bind loopback in production)")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently solving requests (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "max requests waiting for a solve slot before 429 shedding")
		maxSessions  = flag.Int("max-sessions", 0, "max live stateful sessions before LRU eviction (0 = 64)")
		defTimeout   = flag.Duration("default-timeout", 60*time.Second, "solver time limit for requests that set none")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "cap on per-request solver time limits")
		traceDir     = flag.String("trace-dir", "", "write per-request solver event traces (JSONL) into this directory")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight solves on SIGTERM")
		noSLO        = flag.Bool("no-slo", false, "disable per-request SLO instrumentation (phase histograms, Server-Timing, /statusz rates)")
		solveDelay   = flag.Duration("solve-delay", 0, "artificially extend each solve-slot occupancy (load experiments only)")
		flightEvents = flag.Int("flight-events", 0, "flight-recorder ring size in events (0 = 4096)")
		flightDir    = flag.String("flight-dir", "", "write flight dumps into this directory (default: -trace-dir)")
		profThresh   = flag.Duration("profile-threshold", 0, "capture a CPU profile for solves running longer than this (0 disables)")
		profDir      = flag.String("profile-dir", "", "write threshold CPU profiles into this directory (default: -trace-dir)")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	s := daemon.New(daemon.Config{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		MaxSessions:      *maxSessions,
		DefaultTimeLimit: *defTimeout,
		MaxTimeLimit:     *maxTimeout,
		TraceDir:         *traceDir,
		Logger:           logger,
		DisableSLO:       *noSLO,
		SolveDelay:       *solveDelay,
		FlightEvents:     *flightEvents,
		FlightDir:        *flightDir,
		ProfileThreshold: *profThresh,
		ProfileDir:       *profDir,
	})
	if err := s.Start(*addr); err != nil {
		return err
	}
	logger.Info("listening", slog.String("addr", s.Addr()))

	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, s.DebugHandler()); err != nil {
				logger.Warn("debug server", slog.String("error", err.Error()))
			}
		}()
	}

	// Graceful drain: on SIGTERM/SIGINT stop accepting, flip /readyz to
	// 503, and wait up to -drain-timeout for in-flight solves.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", slog.Duration("timeout", *drainTimeout))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && err != http.ErrServerClosed {
		return err
	}
	logger.Info("drained")
	return nil
}
