// Benchmarks regenerating the paper's evaluation (§V), one per table or
// figure, at a reduced default scale (see EXPERIMENTS.md for the scale
// mapping and cmd/experiments for larger runs). Each benchmark logs the
// rendered rows/series the paper reports on its first iteration; run
// with -v to see them:
//
//	go test -bench=. -benchmem -v
package rulefit_test

import (
	"sync"
	"testing"
	"time"

	"rulefit/internal/bench"
	"rulefit/internal/core"
)

// logOnce keeps benchmark output readable across b.N iterations.
var logOnce sync.Map

func logFirst(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := logOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + text)
	}
}

// benchBase is the reduced-scale workload shared by the figure benches:
// a k=4 fat-tree (20 switches) with 8 ingress policies and 8 paths each.
func benchBase() bench.Config {
	cfg := bench.Config{K: 4, Ingresses: 8, PathsPerIngress: 8, Rules: 20, Seed: 0}
	cfg.Opts.TimeLimit = 120 * time.Second
	return cfg
}

// BenchmarkFig7 regenerates Figure 7 (runtime vs #rules, smallest
// fat-tree; paper: k=8, C∈{200,1000} — here k=4, C∈{25,100}). The
// tight series peaks near the feasibility boundary and collapses when
// the instance over-constrains (the paper's r=100→110 sudden drop).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Experiment1(benchBase(), []int{5, 10, 15, 20, 25, 30}, []int{25, 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "fig7", bench.RenderSeries("Fig. 7 analogue: runtime vs #rules (fat-tree k=4)", "#rules", series))
	}
}

// BenchmarkFig7Workers runs the tight half of the Fig. 7 sweep (C=25,
// the series dominated by branch & bound) at fixed solver worker
// counts; compare sub-benchmark times to see the parallel speedup on
// multi-core hardware. scripts/bench.sh records the same comparison as
// machine-readable JSON.
func BenchmarkFig7Workers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(itoa(w)+"w", func(b *testing.B) {
			cfg := benchBase()
			cfg.Opts.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := bench.Experiment1(cfg, []int{15, 20, 25}, []int{25}, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8 regenerates Figure 8 (middle network size; paper: k=16 —
// here k=6, 99 switches scaled down).
func BenchmarkFig8(b *testing.B) {
	cfg := benchBase()
	cfg.K = 6
	cfg.Ingresses = 12
	for i := 0; i < b.N; i++ {
		series, err := bench.Experiment1(cfg, []int{5, 10, 15}, []int{25, 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "fig8", bench.RenderSeries("Fig. 8 analogue: runtime vs #rules (fat-tree k=6)", "#rules", series))
	}
}

// BenchmarkFig9 regenerates Figure 9 (largest network; paper: k=32 —
// here k=8, 80 switches).
func BenchmarkFig9(b *testing.B) {
	cfg := benchBase()
	cfg.K = 8
	cfg.Ingresses = 16
	for i := 0; i < b.N; i++ {
		series, err := bench.Experiment1(cfg, []int{5, 10, 15}, []int{25, 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "fig9", bench.RenderSeries("Fig. 9 analogue: runtime vs #rules (fat-tree k=8)", "#rules", series))
	}
}

// BenchmarkFig10 regenerates Figure 10: runtime vs #paths at two
// capacities; the flat loose-capacity series is the paper's observation
// that path count matters little when switches are uncongested.
func BenchmarkFig10(b *testing.B) {
	cfg := benchBase()
	cfg.Rules = 15
	for i := 0; i < b.N; i++ {
		series, err := bench.Experiment2(cfg, []int{16, 32, 64, 96}, []int{25, 100})
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "fig10", bench.RenderSeries("Fig. 10 analogue: runtime vs #paths", "#paths", series))
	}
}

// BenchmarkTable2 regenerates Table II: total rules and duplication
// overhead with and without merging across capacities, including the
// infeasible-made-feasible cells.
func BenchmarkTable2(b *testing.B) {
	cfg := benchBase()
	cfg.PathsPerIngress = 4
	cfg.Rules = 8
	for i := 0; i < b.N; i++ {
		cells, err := bench.Experiment3(cfg, []int{2, 4, 6}, []int{8, 9, 10})
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "table2", bench.RenderTable2(cells))
	}
}

// BenchmarkFig11 regenerates Figure 11: runtime vs switch capacity; the
// rise-then-drop shape around the feasibility boundary is the result.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Experiment4(benchBase(), []int{10, 15, 20, 25, 30, 40, 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "fig11", bench.RenderPoints("Fig. 11 analogue: runtime vs capacity", "C", pts))
	}
}

// BenchmarkExp5Install regenerates Experiment 5's policy-installation
// study: batches of new single-path policies placed into spare capacity.
func BenchmarkExp5Install(b *testing.B) {
	cfg := benchBase()
	cfg.Capacity = 40
	for i := 0; i < b.N; i++ {
		res, err := bench.Experiment5(cfg, []int{8, 16, 32}, nil)
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "exp5i", bench.RenderExp5(res))
	}
}

// BenchmarkExp5Modify regenerates Experiment 5's routing-change study:
// existing policies re-placed after their path sets change.
func BenchmarkExp5Modify(b *testing.B) {
	cfg := benchBase()
	cfg.Capacity = 40
	for i := 0; i < b.N; i++ {
		res, err := bench.Experiment5(cfg, nil, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "exp5m", bench.RenderExp5(res))
	}
}

// BenchmarkBaselines regenerates §V's closing comparison: the optimizer
// against greedy ingress-first and p x r replication.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Baselines(benchBase())
		if err != nil {
			b.Fatal(err)
		}
		logFirst(b, "baselines", bench.RenderBaselines(res))
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// ablationRun solves one fixed workload under the given options.
func ablationRun(b *testing.B, mutate func(*bench.Config)) bench.Result {
	b.Helper()
	cfg := benchBase()
	cfg.Rules = 15
	cfg.Capacity = 30
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := bench.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationBackendILP and ...SAT compare the two exact backends
// on identical instances (satisfiability mode, where both are fast).
func BenchmarkAblationBackendILP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, func(c *bench.Config) { c.Opts.Backend = core.BackendILP; c.Opts.SatisfyOnly = true })
	}
}

// BenchmarkAblationBackendSAT is the SAT side of the backend ablation.
func BenchmarkAblationBackendSAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, func(c *bench.Config) { c.Opts.Backend = core.BackendSAT; c.Opts.SatisfyOnly = true })
	}
}

// BenchmarkAblationPresolveOn/Off measure the ILP presolve contribution.
func BenchmarkAblationPresolveOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, nil)
	}
}

// BenchmarkAblationPresolveOff disables bound-propagation presolve.
func BenchmarkAblationPresolveOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, func(c *bench.Config) { c.Opts.DisablePresolve = true })
	}
}

// BenchmarkAblationSlicingOn/Off measure path-sliced policies (§IV-C):
// slicing shrinks the variable set when rules only overlap some routes.
func BenchmarkAblationSlicingOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ablationRun(b, func(c *bench.Config) { c.Opts.PathSlicing = true })
		logFirst(b, "sliceOn", renderVars("with slicing", res))
	}
}

// BenchmarkAblationSlicingOff is the unsliced side.
func BenchmarkAblationSlicingOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ablationRun(b, nil)
		logFirst(b, "sliceOff", renderVars("without slicing", res))
	}
}

// BenchmarkAblationRedundancyOn measures redundancy removal (Fig. 4's
// optional first stage) as a preprocessing ablation.
func BenchmarkAblationRedundancyOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, func(c *bench.Config) { c.Opts.RemoveRedundant = true })
	}
}

// BenchmarkAblationObjectiveTraffic solves with the hop-weighted
// objective instead of total rules (§IV-A4).
func BenchmarkAblationObjectiveTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, func(c *bench.Config) { c.Opts.Objective = core.ObjTraffic })
	}
}

// renderVars summarizes an ablation run's model size.
func renderVars(name string, res bench.Result) string {
	return name + ": " + res.Status.String() +
		", vars=" + itoa(res.Variables) + ", constraints=" + itoa(res.Constraints) +
		", rules=" + itoa(res.TotalRules)
}

// itoa avoids importing strconv in a _test file for one call site.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
